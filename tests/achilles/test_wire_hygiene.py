"""Wire hygiene: everything the transport ships must survive pickling.

The TCP transport puts whole :class:`WorkerSession` bundles and
:class:`ShardOutcome` results on a socket; the local transport pickles
the same objects through multiprocessing queues. Any unpicklable or
process-local state hiding inside these types (open sockets, live
solver pools, lambdas) would surface as a confusing failure deep inside
a worker, so this file round-trips every wire-crossing type explicitly —
through the actual frame codec, not just ``pickle.dumps``.
"""

import itertools
import pickle
import socket

import pytest

from repro.achilles import Achilles, AchillesConfig
from repro.achilles.report import TrojanFinding
from repro.bench.experiments import FSP_SESSION_MASK
from repro.explore import ShardScheduler, WorkerSession
from repro.explore.shard import ShardOutcome, run_assignment
from repro.explore.tcp import FrameReader, send_frame
from repro.solver.solver import SolverStats
from repro.symex.engine import Engine, EngineConfig
from repro.systems import fsp
from repro.systems.toy import TOY_LAYOUT, toy_client, toy_server


def wire_roundtrip(obj):
    """Send ``obj`` through the real frame codec and return the copy."""
    left, right = socket.socketpair()
    with left, right:
        send_frame(left, "payload", obj)
        reader = FrameReader(right)
        while not reader.pending():
            assert reader.feed()
        kind, copy = reader.next_frame()
    assert kind == "payload"
    return copy


@pytest.fixture(scope="module")
def toy_achilles():
    achilles = Achilles(AchillesConfig(layout=TOY_LAYOUT))
    predicates = achilles.extract_clients({"toy": toy_client})
    report = achilles.search(toy_server, predicates)
    return achilles, predicates, report


class TestClientPredicateSet:
    def test_round_trips_through_the_frame_codec(self, toy_achilles):
        _, predicates, _ = toy_achilles
        copy = wire_roundtrip(predicates)
        assert len(copy) == len(predicates)
        # MessageLayout has no structural __eq__; compare what matters.
        assert copy.layout.name == predicates.layout.name
        assert copy.layout.total_size == predicates.layout.total_size
        for original, revived in zip(predicates.predicates, copy.predicates):
            assert revived.index == original.index
            assert revived.client == original.client
            assert revived.payload == original.payload
            # Hash-consed expressions re-intern: identical, not just equal.
            assert revived.constraints == original.constraints
        for original, revived in zip(predicates.negations, copy.negations):
            assert revived.pred_index == original.pred_index
            assert revived.expr is original.expr  # re-interned identity

    def test_different_from_matrix_travels_without_its_service(self,
                                                               toy_achilles):
        """The matrix is pure data after construction; the solver service
        (which may hold a live process pool) must be dropped, and lookups
        must still answer from the shipped table."""
        _, predicates, _ = toy_achilles
        copy = wire_roundtrip(predicates)
        matrix, original = copy.different_from, predicates.different_from
        assert matrix._service is None
        assert matrix._table == original._table
        assert matrix._independent == original._independent
        for i, j in itertools.product(range(len(predicates)), repeat=2):
            for name in TOY_LAYOUT.field_names:
                assert matrix.different(i, j, name) == \
                    original.different(i, j, name)

    def test_richer_fsp_set_still_picklable(self):
        """The FSP predicate set exercises multi-client extraction and a
        bigger matrix — the actual payload the parity suite ships."""
        commands = dict(itertools.islice(fsp.COMMANDS.items(), 2))
        achilles = Achilles(AchillesConfig(layout=fsp.FSP_LAYOUT,
                                           mask=FSP_SESSION_MASK))
        predicates = achilles.extract_clients(fsp.literal_clients(commands))
        copy = wire_roundtrip(predicates)
        assert len(copy) == len(predicates)
        assert copy.stats == predicates.stats


class TestObserverDelta:
    def test_trojan_delta_round_trips(self, toy_achilles):
        """The per-assignment ObserverDelta a shard worker ships back."""
        from repro.achilles.server_analysis import _shard_setup

        achilles, predicates, _ = toy_achilles
        engine = Engine(EngineConfig())
        outcome = run_assignment(
            engine, _shard_setup,
            (toy_server, predicates, achilles.server_msg, None, "msg", True),
            [()])
        assert outcome.delta is not None
        copy = wire_roundtrip(outcome.delta)
        assert copy.counters == outcome.delta.counters
        assert copy.per_path == outcome.delta.per_path


class TestShardOutcome:
    def test_full_outcome_round_trips(self):
        """ShardOutcome carries PathResults (with live Expr constraints),
        exploration stats and solver counters — the whole DONE payload."""
        def setup(engine):
            def program(ctx):
                x = ctx.fresh_byte("x")
                ctx.branch(x < 100)
                ctx.branch(x < 10)
            return program, None

        engine = Engine(EngineConfig())
        outcome = run_assignment(engine, setup, (), [()])
        copy = wire_roundtrip(outcome)
        assert copy.executed == outcome.executed
        assert copy.solver_stats == outcome.solver_stats
        assert len(copy.paths) == len(outcome.paths)
        for original, revived in zip(outcome.paths, copy.paths):
            assert revived.path_id == original.path_id
            assert revived.verdict == original.verdict
            assert revived.decisions == original.decisions
            # Re-interned constraints are the same objects again.
            for expr_a, expr_b in zip(original.constraints,
                                      revived.constraints):
                assert expr_a is expr_b

    def test_empty_outcome_round_trips(self):
        copy = wire_roundtrip(ShardOutcome())
        assert copy.executed == []
        assert copy.paths == []
        assert copy.delta is None


class TestScalarPayloads:
    def test_assignment(self):
        """The task-frame payload a coordinator ships on reassignment:
        roots plus the excluded (already-donated) subtrees."""
        from repro.explore import Assignment

        assignment = Assignment(roots=((True,), (False, True)),
                                exclude=((False, True, False),))
        copy = wire_roundtrip(assignment)
        assert copy == assignment
        assert copy.roots == ((True,), (False, True))
        assert copy.exclude == ((False, True, False),)

    def test_solver_stats(self):
        stats = SolverStats()
        stats.queries = 41
        copy = wire_roundtrip(stats)
        assert copy == stats

    def test_engine_config(self):
        config = EngineConfig()
        copy = wire_roundtrip(config)
        assert copy == config

    def test_trojan_finding(self, toy_achilles):
        _, _, report = toy_achilles
        assert report.findings
        for finding in report.findings:
            copy = wire_roundtrip(finding)
            assert isinstance(copy, TrojanFinding)
            assert copy == finding

    def test_worker_session_with_snapshot(self, toy_achilles):
        """The full session-init payload, cache snapshot included."""
        from repro.achilles.server_analysis import _shard_setup

        achilles, predicates, _ = toy_achilles
        session = WorkerSession(
            setup=_shard_setup,
            setup_args=(toy_server, predicates, achilles.server_msg,
                        None, "msg", True),
            engine_config=EngineConfig(),
            cache_snapshot=achilles.query_cache.snapshot())
        copy = wire_roundtrip(session)
        assert copy.setup is _shard_setup
        assert copy.engine_config == session.engine_config
        assert copy.cache_snapshot == session.cache_snapshot
        assert len(copy.cache_snapshot) > 0


class TestSchedulerSessionIsPicklable:
    def test_scheduler_builds_a_picklable_session(self):
        """What _fan_out would ship must survive pickle even before any
        transport is involved — catching hygiene regressions without a
        socket in the loop."""
        def module_level_stand_in(engine):  # pragma: no cover - shipped
            return None, None

        scheduler = ShardScheduler(tree_setup, (3,), shards=2)
        scheduler.engine.explore(*tree_setup(scheduler.engine, 3))
        session = WorkerSession(
            setup=scheduler.setup, setup_args=scheduler.setup_args,
            engine_config=scheduler.engine_config,
            cache_snapshot=scheduler.engine.query_cache.snapshot())
        revived = pickle.loads(pickle.dumps(session))
        assert revived.setup is tree_setup
        assert revived.setup_args == (3,)


def tree_setup(engine, depth):
    def program(ctx):
        for i in range(depth):
            ctx.branch(ctx.fresh_bool(f"b{i}"))
    return program, None
