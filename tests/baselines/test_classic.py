"""Tests for the classic symbolic execution baseline (on the toy system)."""

import pytest

from repro.baselines.classic import classic_symbolic_execution
from repro.messages.concrete import decode_ints
from repro.systems.toy import PEERS, READ, TOY_LAYOUT, WRITE, toy_server
from repro.systems.toy.protocol import CHECKSUM_SPAN, toy_checksum


@pytest.fixture(scope="module")
def result():
    # The probe alphabet must contain checksum-consistent combinations:
    # 200 in a payload byte makes the crc byte 202 (the toy checksum is
    # additive over a base of 2).
    return classic_symbolic_execution(toy_server, TOY_LAYOUT,
                                      alphabet=(0, 200, 202),
                                      per_path_limit=64)


class TestClassicBaseline:
    def test_finds_both_accepting_paths(self, result):
        assert result.accepting_paths == 2

    def test_enumerates_messages_on_each_path(self, result):
        kinds = {decode_ints(TOY_LAYOUT, m)["request"] for m in result.messages}
        assert kinds == {READ, WRITE}

    def test_every_message_passes_server_checks(self, result):
        for message in result.messages:
            fields = decode_ints(TOY_LAYOUT, message)
            assert fields["sender"] in PEERS
            assert fields["crc"] == toy_checksum(list(message[:CHECKSUM_SPAN]))

    def test_cannot_distinguish_trojans(self, result):
        """The baseline's defining weakness: valid and Trojan messages
        come out of the same bag."""
        def signed(v):
            return v - (1 << 32) if v >= (1 << 31) else v

        trojan = [m for m in result.messages
                  if decode_ints(TOY_LAYOUT, m)["request"] == READ
                  and (signed(decode_ints(TOY_LAYOUT, m)["address"]) < 0
                       or decode_ints(TOY_LAYOUT, m)["value"] != 0)]
        valid = [m for m in result.messages if m not in trojan]
        assert trojan, "Trojan messages are in the output"
        assert valid, "so are valid messages - with no label telling them apart"

    def test_per_path_cap_respected(self):
        capped = classic_symbolic_execution(toy_server, TOY_LAYOUT,
                                            alphabet=(0, 1, 200),
                                            per_path_limit=3)
        assert len(capped.messages) <= 3 * capped.accepting_paths
