"""Tests for the black-box fuzzing baseline."""

import pytest

from repro.baselines.fuzzer import FuzzCampaign, expected_trojans_per_hour


def _accepts(message: bytes) -> bool:
    return message[0] == 0x41


def _is_trojan(message: bytes) -> bool:
    return message[0] == 0x41 and message[1] == 0x00


class TestCampaign:
    def test_reproducible_with_seed(self):
        first = FuzzCampaign(b"\x00" * 4, _accepts, _is_trojan, seed=7)
        second = FuzzCampaign(b"\x00" * 4, _accepts, _is_trojan, seed=7)
        assert [first.generate() for _ in range(5)] == \
            [second.generate() for _ in range(5)]

    def test_template_bytes_preserved(self):
        campaign = FuzzCampaign(b"\xAA\xBB\xCC", _accepts, _is_trojan,
                                positions=[1])
        for _ in range(10):
            message = campaign.generate()
            assert message[0] == 0xAA
            assert message[2] == 0xCC

    def test_out_of_range_position_rejected(self):
        with pytest.raises(ValueError):
            FuzzCampaign(b"\x00", _accepts, _is_trojan, positions=[5])

    def test_randomized_bits(self):
        campaign = FuzzCampaign(b"\x00" * 8, _accepts, _is_trojan,
                                positions=[0, 1, 2])
        assert campaign.randomized_bits == 24

    def test_run_tests_counts_accepts_and_trojans(self):
        campaign = FuzzCampaign(b"\x41\x00", _accepts, _is_trojan,
                                positions=[1], seed=1)
        result = campaign.run_tests(512)
        assert result.tests == 512
        assert result.accepted == 512          # byte 0 fixed at 0x41
        assert 0 < result.trojans_found < 20   # byte 1 hits 0 rarely
        assert result.false_positives == result.accepted - result.trojans_found

    def test_run_for_respects_time_budget(self):
        campaign = FuzzCampaign(b"\x00" * 4, _accepts, _is_trojan)
        result = campaign.run_for(0.05)
        assert result.tests > 0
        assert result.elapsed_seconds >= 0.05

    def test_throughput_computed(self):
        campaign = FuzzCampaign(b"\x00" * 4, _accepts, _is_trojan)
        result = campaign.run_tests(1000)
        assert result.tests_per_minute > 0


class TestExpectedYield:
    def test_paper_arithmetic(self):
        # §6.2: 75,000 tests/min, 66M Trojans in a 2^64 space -> ~1e-5/h.
        expected = expected_trojans_per_hour(75_000, 66_000_000, 64)
        assert expected == pytest.approx(1.6e-5, rel=0.15)

    def test_scales_linearly_with_throughput(self):
        slow = expected_trojans_per_hour(1_000, 66_000_000, 64)
        fast = expected_trojans_per_hour(2_000, 66_000_000, 64)
        assert fast == pytest.approx(2 * slow)

    def test_dense_space_yields_everything(self):
        # A space with 50% Trojans: each test has 0.5 expected yield.
        expected = expected_trojans_per_hour(60, 1 << 7, 8)
        assert expected == pytest.approx(60 * 60 * 0.5)
