"""Tests for the benchmark table/series renderers."""

from repro.bench.tables import format_series, format_table


class TestFormatTable:
    def test_alignment(self):
        text = format_table(["name", "n"], [["a", 1], ["longer", 22]])
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert all(len(line) <= len(max(lines, key=len)) for line in lines)
        assert "longer" in lines[3]

    def test_title_prepended(self):
        text = format_table(["x"], [[1]], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_non_string_cells_stringified(self):
        text = format_table(["a", "b"], [[1.5, None]])
        assert "1.5" in text and "None" in text

    def test_empty_rows(self):
        text = format_table(["col"], [])
        assert "col" in text


class TestFormatSeries:
    def test_bars_scale_to_peak(self):
        text = format_series([(0.0, 1.0), (1.0, 2.0)], width=10)
        lines = text.splitlines()
        assert lines[-1].count("#") == 10
        assert lines[-2].count("#") == 5

    def test_empty_series(self):
        assert "(no data)" in format_series([])

    def test_labels_shown(self):
        text = format_series([(1.0, 1.0)], x_label="time", y_label="found")
        assert "time" in text and "found" in text

    def test_zero_peak_does_not_divide_by_zero(self):
        text = format_series([(0.0, 0.0)])
        assert text  # renders without error


class TestExperimentDrivers:
    def test_pbft_analysis_driver(self):
        from repro.bench.experiments import run_pbft_analysis

        report = run_pbft_analysis()
        assert report.trojan_count == 2

    def test_trojan_pattern_count_matches_class_structure(self):
        from repro.bench.experiments import _count_trojan_bit_patterns
        from repro.systems.fsp import all_trojan_classes

        total = _count_trojan_bit_patterns()
        # 80 classes, each contributing 94^t * 256^(free) patterns: the
        # count is dominated by the three-free-byte classes.
        assert total > len(all_trojan_classes())
        assert total % 1 == 0
