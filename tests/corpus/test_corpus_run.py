"""End-to-end scenario-matrix runs: bulk scoring and reproducibility.

A small corpus (one variant per template) must hunt to precision ==
recall == 1.0 on every row, the deterministic JSON payload must be
byte-identical across two runs, and a sharded rerun of a variant must
match its serial findings — the corpus inherits the determinism
contract of the underlying pipeline.
"""

import pytest

from repro.bench.experiments import _scored_accuracy_run, run_corpus
from repro.corpus import bound_ground_truth, corpus_payload, dump_payload


@pytest.fixture(scope="module")
def small_corpus():
    return run_corpus(corpus_seed=0, variants=3)


class TestCorpusRun:
    def test_every_variant_scores_perfectly(self, small_corpus):
        assert len(small_corpus.results) == 3
        for result in small_corpus.results:
            outcome = result.outcome
            assert outcome.false_positives == 0, result.variant.token
            assert outcome.precision == 1.0, result.variant.token
            assert outcome.recall == 1.0, result.variant.token
        assert small_corpus.perfect

    def test_all_templates_represented(self, small_corpus):
        templates = {r.variant.template for r in small_corpus.results}
        assert templates == {"tpc", "raft", "broadcast"}

    def test_witnesses_are_trojan_under_the_variant_oracle(
            self, small_corpus):
        for result in small_corpus.results:
            variant = result.variant
            for witness in result.outcome.report.witnesses():
                assert variant.accepts(witness), variant.token
                assert not variant.generable(witness), variant.token
                assert variant.classify(witness) in variant.classes

    def test_payload_is_byte_reproducible(self, small_corpus):
        rerun = run_corpus(corpus_seed=0, variants=3)
        assert dump_payload(corpus_payload(rerun)) == \
            dump_payload(corpus_payload(small_corpus))

    def test_payload_carries_the_reproduction_handles(self, small_corpus):
        payload = corpus_payload(small_corpus)
        assert payload["corpus_seed"] == 0
        assert payload["all_perfect"] is True
        for row in payload["results"]:
            template, _, seed = row["token"].partition(":")
            assert row["template"] == template
            assert row["seed"] == int(seed)
            assert row["classes_found"] == row["classes"]

    def test_only_tokens_rerun_single_variants(self, small_corpus):
        target = small_corpus.results[-1]
        rerun = run_corpus(only=(target.variant.token,))
        assert rerun.corpus_seed is None  # not a generated corpus
        assert len(rerun.results) == 1
        assert rerun.results[0].variant.params == target.variant.params
        assert rerun.results[0].outcome.report.witnesses() == \
            target.outcome.report.witnesses()

    def test_sharded_variant_matches_serial(self, small_corpus):
        # The corpus programs are picklable callables: a shards=2 hunt
        # of the same variant must reproduce the serial findings.
        result = small_corpus.results[1]  # the raft variant
        variant = result.variant
        sharded = _scored_accuracy_run(
            variant.layout, variant.destination, variant.clients,
            variant.server, bound_ground_truth(variant),
            len(variant.classes), 1, 2, None, None)
        serial_findings = [
            (f.server_path_id, f.decisions, f.witness, f.labels)
            for f in result.outcome.report.findings]
        sharded_findings = [
            (f.server_path_id, f.decisions, f.witness, f.labels)
            for f in sharded.report.findings]
        assert sharded_findings == serial_findings
