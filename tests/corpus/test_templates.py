"""Unit tests for the scenario-matrix templates and generator.

The load-bearing property is that a variant's *derived* oracle agrees
with its *drawn* parameters everywhere: the generable set is a subset
of the accept set, the two differ exactly on the seeded classes, and
the whole construction is a pure function of the seed.
"""

import pickle
import random
from itertools import product

import pytest

from repro.corpus import (
    TEMPLATES,
    build_variant,
    generate_corpus,
    parse_variant_token,
    variant_seed,
)
from repro.errors import ReproError
from repro.messages.concrete import encode

#: A handful of fixed seeds per template — enough draws to cover the
#: parameter space corners (pad/no-pad, wide/narrow fields, every bug
#: subset) without turning the suite into a lottery.
SEEDS = (0, 1, 2, 3, 4, 5, 6, 7)


def _variants():
    return [build_variant(template, seed)
            for template in TEMPLATES for seed in SEEDS]


def _sample_messages(variant, count=400):
    """Deterministic samples biased toward the variant's constants.

    Pure random bytes almost never hit an accept path, so half the
    samples draw each field from its drawn constants (kinds, ids,
    values that appear in the params record) plus small integers.
    """
    rng = random.Random(variant.seed ^ 0xC0FFEE)
    interesting = {0, 1, 2, 3, 255}
    stack = list(variant.params.values())
    while stack:
        value = stack.pop()
        if isinstance(value, dict):
            stack.extend(value.values())
        elif isinstance(value, (list, tuple)):
            stack.extend(value)
        elif isinstance(value, int):
            interesting.add(value & 0xFF)
            interesting.add(value)
    choices = sorted(interesting)
    samples = []
    for _ in range(count):
        fields = {}
        for field in variant.layout.fields:
            limit = 1 << (8 * field.size)
            if rng.random() < 0.5:
                fields[field.name] = rng.choice(choices) % limit
            else:
                fields[field.name] = rng.randrange(limit)
        samples.append(encode(variant.layout, fields))
    return samples


def _seed_messages(variant):
    """Directed probes into each region, re-derived from the params
    record independently of the oracle implementation."""
    p = variant.params
    make = lambda **fields: encode(variant.layout, dict(
        {f.name: 0 for f in variant.layout.fields}, **fields))
    if variant.template == "tpc":
        durable, no_op = p["flag_durable"], p["no_op"]
        return [
            make(kind=p["kinds"]["prepare"], txid=1, flags=durable,
                 op=(no_op + 1) % 256),                      # generable
            make(kind=p["kinds"]["commit"], txid=1, flags=0,
                 op=no_op),                                  # generable
            make(kind=p["kinds"]["prepare"], txid=1, flags=0,
                 op=(no_op + 1) % 256),                      # skip-wal?
            make(kind=p["kinds"]["prepare"], txid=1, flags=durable,
                 op=no_op),                                  # empty-op?
            make(kind=0, txid=1),                            # rejected
        ]
    if variant.template == "raft":
        current = p["current_term"]
        leaders, terms = p["term_leaders"], p["log_terms"]
        last = len(terms) - 1
        return [
            make(type=p["kinds"]["append"], term=current,
                 sender=leaders[current - 1], idx=0,
                 logterm=terms[0], cmd=9),                   # generable
            make(type=p["kinds"]["append"], term=1,
                 sender=leaders[0], idx=0, logterm=terms[0]),  # stale?
            make(type=p["kinds"]["vote"], term=current,
                 sender=p["node_ids"][0], idx=last,
                 logterm=terms[last], cmd=0),                # generable
            make(type=p["kinds"]["vote"], term=current,
                 sender=p["node_ids"][0], idx=last - 1,
                 logterm=terms[last], cmd=0),                # off-by-one?
            make(type=0),                                    # rejected
        ]
    ids = p["node_ids"]
    others = [n for n in ids if n != p["broadcaster"]]
    thin = (1 << ids[0]) | (1 << ids[1])
    full = thin | (1 << ids[2])
    return [
        make(kind=p["kinds"]["send"], sender=p["broadcaster"],
             value=p["broadcast_value"]),                    # generable
        make(kind=p["kinds"]["send"], sender=others[0],
             value=p["broadcast_value"]),                    # forged?
        make(kind=p["kinds"]["ready"], sender=ids[0],
             value=p["broadcast_value"], cert=full),         # generable
        make(kind=p["kinds"]["ready"], sender=ids[0],
             value=p["broadcast_value"], cert=thin),         # thin?
        make(kind=0, sender=ids[0], value=p["broadcast_value"]),
    ]


class TestDeterminism:
    def test_same_seed_same_variant(self):
        for template in TEMPLATES:
            first = build_variant(template, 1234)
            second = build_variant(template, 1234)
            assert first.params == second.params
            assert first.classes == second.classes
            assert first.bugs == second.bugs
            assert [f.name for f in first.layout.fields] == \
                [f.name for f in second.layout.fields]

    def test_corpus_generation_is_reproducible(self):
        first = generate_corpus(corpus_seed=7, variants=9)
        second = generate_corpus(corpus_seed=7, variants=9)
        assert [v.token for v in first] == [v.token for v in second]
        assert [v.params for v in first] == [v.params for v in second]

    def test_corpus_round_robins_the_templates(self):
        corpus = generate_corpus(corpus_seed=0, variants=6)
        assert [v.template for v in corpus] == \
            list(TEMPLATES) + list(TEMPLATES)

    def test_variant_seed_is_a_stable_hash(self):
        # Pinned: a change here silently breaks every printed token.
        assert variant_seed(0, "tpc", 0) == 3670824676
        assert variant_seed(0, "tpc", 0) != variant_seed(0, "tpc", 1)
        assert variant_seed(0, "tpc", 0) != variant_seed(1, "tpc", 0)
        assert variant_seed(0, "tpc", 0) != variant_seed(0, "raft", 0)

    def test_token_round_trips(self):
        for variant in generate_corpus(corpus_seed=3, variants=3):
            rebuilt = parse_variant_token(variant.token)
            assert rebuilt.params == variant.params
            assert rebuilt.classes == variant.classes

    def test_bad_tokens_and_templates_are_rejected(self):
        with pytest.raises(ReproError):
            parse_variant_token("tpc")
        with pytest.raises(ReproError):
            parse_variant_token("tpc:notanumber")
        with pytest.raises(ReproError):
            build_variant("paxos", 0)
        with pytest.raises(ReproError):
            generate_corpus(templates=("tpc", "nope"))


class TestOracleSelfConsistency:
    @pytest.mark.parametrize("variant", _variants(),
                             ids=lambda v: v.token)
    def test_generable_subset_of_accepted_and_classified_difference(
            self, variant):
        accepted = generable = trojan = 0
        for message in _seed_messages(variant) + _sample_messages(variant):
            a = variant.accepts(message)
            g = variant.generable(message)
            cls = variant.classify(message)
            if g:
                generable += 1
                assert a, f"{variant.token}: generable but not accepted " \
                    f"{message.hex()}"
            if a:
                accepted += 1
            # classify is exactly the accepted-minus-generable set...
            assert (cls is not None) == (a and not g), message.hex()
            # ...and lands inside the declared class universe.
            if cls is not None:
                trojan += 1
                assert cls in variant.classes, f"{variant.token}: {cls}"
        # The biased sampler must actually exercise all three regions.
        assert accepted and generable and trojan, (
            f"{variant.token}: sampler missed a region "
            f"(accepted={accepted}, generable={generable}, "
            f"trojan={trojan})")

    @pytest.mark.parametrize("template", sorted(TEMPLATES))
    def test_every_variant_has_seeded_classes(self, template):
        # An empty universe would make recall undefined; generation must
        # never produce one (non-empty bug menu subsets by construction).
        for seed in range(50):
            variant = build_variant(template,
                                    variant_seed(0, template, seed))
            assert variant.bugs
            assert variant.classes

    def test_broadcast_thin_certificates_are_classes(self):
        # When thin-quorum is injected the class set enumerates exactly
        # the C(4,2)=6 two-bit member certificates.
        for seed in SEEDS:
            variant = build_variant("broadcast", seed)
            if "thin-quorum" not in " ".join(variant.bugs):
                continue
            thin = [cls for cls in variant.classes
                    if "thin-quorum" in cls]
            assert len(thin) == 6

    def test_raft_vote_class_is_never_generable(self):
        # The log draw forces a strict final term step, so the one-short
        # candidate log can never match the true last term: whenever the
        # vote bug is injected its class is real.
        for seed in range(30):
            variant = build_variant("raft",
                                    variant_seed(1, "raft", seed))
            log_terms = variant.params["log_terms"]
            assert log_terms[-2] < log_terms[-1]


class TestPicklability:
    def test_programs_and_oracles_survive_pickling(self):
        # Sharded/TCP runs ship the server program by pickle; the corpus
        # programs are callable dataclasses precisely for this.
        for template in TEMPLATES:
            variant = build_variant(template, 99)
            server = pickle.loads(pickle.dumps(variant.server))
            assert server.params == variant.server.params
            clients = pickle.loads(pickle.dumps(variant.clients))
            assert set(clients) == set(variant.clients)
            classify = pickle.loads(pickle.dumps(variant.classify))
            for message in _sample_messages(variant, count=50):
                assert classify(message) == variant.classify(message)


class TestLayoutPerturbation:
    def test_field_orders_vary_across_seeds(self):
        for template in TEMPLATES:
            orders = {tuple(f.name for f in
                            build_variant(template, seed).layout.fields)
                      for seed in range(20)}
            assert len(orders) > 3, f"{template}: layout never varies"

    def test_reserved_field_must_be_zero(self):
        for template in TEMPLATES:
            for seed in range(20):
                variant = build_variant(template, seed)
                if not variant.params["pad_size"]:
                    continue
                for message in _sample_messages(variant, count=200):
                    view = variant.layout.view("pad")
                    if any(message[view.offset:view.end]):
                        assert not variant.accepts(message)
                        assert not variant.generable(message)
                break
