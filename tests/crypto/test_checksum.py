"""Checksums must agree between concrete and symbolic evaluation."""

from hypothesis import given, strategies as st

from repro.crypto.checksum import byte_sum_checksum, xor_checksum
from repro.solver import ast, check
from repro.solver.evalmodel import evaluate

BYTES = st.lists(st.integers(0, 255), min_size=0, max_size=8)


class TestConcrete:
    def test_sum_wraps_mod_256(self):
        assert byte_sum_checksum([200, 100]) == 44

    def test_sum_empty_is_initial(self):
        assert byte_sum_checksum([], initial=9) == 9

    def test_xor_self_inverse(self):
        assert xor_checksum([0xAB, 0xAB]) == 0

    @given(data=BYTES, initial=st.integers(0, 255))
    def test_sum_matches_reference(self, data, initial):
        assert byte_sum_checksum(data, initial) == (initial + sum(data)) & 0xFF

    @given(data=BYTES)
    def test_xor_matches_reference(self, data):
        expected = 0
        for b in data:
            expected ^= b
        assert xor_checksum(data) == expected


class TestSymbolicAgreement:
    @given(data=BYTES, symbolic_at=st.integers(0, 7))
    def test_sum_symbolic_equals_concrete(self, data, symbolic_at):
        if not data:
            return
        symbolic_at %= len(data)
        mixed = list(data)
        var = ast.bv_var("s", 8)
        mixed[symbolic_at] = var
        expr = byte_sum_checksum(mixed)
        value = evaluate(expr, {var: data[symbolic_at]})
        assert value == byte_sum_checksum(data)

    def test_constant_exprs_fold_to_int(self):
        # All-constant expressions count as concrete input.
        exprs = [ast.bv_const(1, 8), ast.bv_const(2, 8)]
        assert byte_sum_checksum(exprs) == 3

    def test_checksum_constraint_is_solvable(self):
        data = [ast.bv_var("a", 8), ast.bv_var("b", 8), 5]
        expr = byte_sum_checksum(data)
        result = check([ast.eq(expr, ast.bv_const(0, 8))])
        assert result.is_sat
        a = result.value(data[0])
        b = result.value(data[1])
        assert (a + b + 5) & 0xFF == 0
