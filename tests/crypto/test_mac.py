"""Tests for the toy MAC and per-replica authenticators."""

from hypothesis import given, strategies as st

from repro.crypto.mac import Authenticator, mac_tag, verify_mac

DATA = st.lists(st.integers(0, 255), min_size=1, max_size=8)


class TestMacTag:
    def test_deterministic(self):
        assert mac_tag(0xBEEF, [1, 2, 3]) == mac_tag(0xBEEF, [1, 2, 3])

    @given(data=DATA, key=st.integers(0, 0xFFFF))
    def test_verify_accepts_own_tag(self, data, key):
        assert verify_mac(key, data, mac_tag(key, data))

    @given(data=DATA, key=st.integers(0, 0xFFFF))
    def test_tamper_detected(self, data, key):
        tag = mac_tag(key, data)
        tampered = list(data)
        tampered[0] ^= 0x01
        assert not verify_mac(key, tampered, tag)

    @given(data=DATA, key=st.integers(0, 0xFFFE))
    def test_wrong_key_detected(self, data, key):
        tag = mac_tag(key, data)
        assert not verify_mac(key + 1, data, tag)

    def test_byte_order_matters(self):
        assert mac_tag(1, [1, 2]) != mac_tag(1, [2, 1])


class TestAuthenticator:
    KEYS = [0x1111, 0x2222, 0x3333, 0x4444]

    def test_sign_produces_one_tag_per_key(self):
        auth = Authenticator.sign(self.KEYS, [9, 9])
        assert len(auth.tags) == 4

    def test_each_replica_verifies_its_tag(self):
        auth = Authenticator.sign(self.KEYS, [1, 2, 3])
        for rid, key in enumerate(self.KEYS):
            assert auth.verify(rid, key, [1, 2, 3])

    def test_cross_replica_tag_rejected(self):
        auth = Authenticator.sign(self.KEYS, [1, 2, 3])
        assert not auth.verify(0, self.KEYS[1], [1, 2, 3])

    def test_out_of_range_replica_rejected(self):
        auth = Authenticator.sign(self.KEYS, [1])
        assert not auth.verify(7, self.KEYS[0], [1])

    def test_wire_round_trip(self):
        auth = Authenticator.sign(self.KEYS, [5, 6, 7])
        assert Authenticator.from_wire(auth.wire_bytes()) == auth

    def test_corrupt_breaks_only_target_replica(self):
        auth = Authenticator.sign(self.KEYS, [5])
        bad = auth.corrupt(2)
        assert not bad.verify(2, self.KEYS[2], [5])
        assert bad.verify(0, self.KEYS[0], [5])
        assert bad.verify(1, self.KEYS[1], [5])
        assert bad.verify(3, self.KEYS[3], [5])
