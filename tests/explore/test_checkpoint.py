"""Coordinator checkpoint/resume: journal mechanics and region algebra.

Three layers: :class:`RunJournal` file mechanics (durability, torn-tail
recovery, validation errors), the :func:`outstanding_regions` resume
algebra (including donation chains), and scheduler-level kill/resume
parity — the coordinator is killed at every checkpoint boundary via
:class:`KillCoordinatorAt` and the resumed run must produce results
byte-identical to an uninterrupted one.

Setup callables live at module level so worker processes can unpickle
them under any start method.
"""

import pytest

from repro.errors import SymexError
from repro.explore import (
    CoordinatorKilled,
    JournalMeta,
    KillCoordinatorAt,
    RunJournal,
    ShardScheduler,
    TruncateSegment,
    apply_disk_fault,
    load_journal,
    outstanding_regions,
)
from repro.explore.checkpoint import JOURNAL_NAME, engine_signature
from repro.explore.shard import ShardOutcome
from repro.symex.engine import Engine, EngineConfig, ExplorationStats

META = JournalMeta(setup="tests:setup", engine_signature=("sig",))


def _outcome(executed=1):
    return ShardOutcome(executed=executed, paths=(),
                        stats=ExplorationStats(), delta=None)


def _begin(tmp_path, interval=1, hook=None):
    journal = RunJournal(tmp_path / "run", checkpoint_interval=interval,
                        on_checkpoint=hook)
    journal.begin(META, _outcome(), frontier=((True,), (False,)))
    return journal


def tree_setup(engine, depth, thresholds=()):
    def program(ctx):
        for i in range(depth):
            ctx.branch(ctx.fresh_bool(f"b{i}"))
        x = ctx.fresh_byte("x")
        for threshold in thresholds:
            ctx.branch(x < threshold)
    return program, None


TREE_ARGS = (4, [30, 200])


def _signature(result):
    return [(p.path_id, p.verdict, p.decisions, p.constraints, p.labels)
            for p in result.paths]


class TestRunJournal:
    def test_begin_is_the_first_durable_checkpoint(self, tmp_path):
        fired = []
        journal = _begin(tmp_path, hook=fired.append)
        assert journal.checkpoints_written == 1
        assert fired == [1]
        journal.close()
        replay = load_journal(tmp_path / "run" / JOURNAL_NAME, META)
        assert replay.frontier == ((True,), (False,))
        assert replay.regions == []

    def test_interval_buffers_completions(self, tmp_path):
        journal = _begin(tmp_path, interval=2)
        journal.note_outcome(((True,),), (), _outcome())
        assert journal.checkpoints_written == 1  # buffered, not durable
        journal.note_outcome(((False,),), (), _outcome())
        assert journal.checkpoints_written == 2
        journal.close()
        replay = load_journal(tmp_path / "run" / JOURNAL_NAME)
        assert len(replay.regions) == 2

    def test_close_flushes_the_tail(self, tmp_path):
        journal = _begin(tmp_path, interval=10)
        journal.note_outcome(((True,),), (), _outcome())
        journal.close()
        replay = load_journal(tmp_path / "run" / JOURNAL_NAME)
        assert replay.regions == [(((True,),), ())]

    def test_abandon_drops_the_buffer(self, tmp_path):
        """A crash simulation must lose the unflushed buffer — that is
        the state a real kill leaves behind."""
        journal = _begin(tmp_path, interval=10)
        journal.note_outcome(((True,),), (), _outcome())
        journal.abandon()
        replay = load_journal(tmp_path / "run" / JOURNAL_NAME)
        assert replay.regions == []

    def test_torn_tail_is_truncated_and_appending_resumes(self, tmp_path):
        journal = _begin(tmp_path)
        journal.note_outcome(((True,),), (), _outcome())
        journal.close()
        path = tmp_path / "run" / JOURNAL_NAME
        apply_disk_fault(path, TruncateSegment(drop_bytes=5))
        resumed = RunJournal(tmp_path / "run")
        replay = resumed.load_for_resume(META)
        assert replay.damaged
        assert replay.regions == []  # the torn completion is gone
        resumed.note_outcome(((False,),), (), _outcome())
        resumed.close()
        final = load_journal(path)
        assert not final.damaged
        assert final.regions == [(((False,),), ())]

    def test_resumed_journal_can_be_killed_again(self, tmp_path):
        journal = _begin(tmp_path)
        journal.close()
        resumed = RunJournal(tmp_path / "run")
        resumed.load_for_resume(META)
        resumed.note_outcome(((True,),), (), _outcome())
        resumed.abandon()
        replay = load_journal(tmp_path / "run" / JOURNAL_NAME)
        assert replay.regions == [(((True,),), ())]


class TestLoadJournalErrors:
    def test_missing_journal(self, tmp_path):
        with pytest.raises(SymexError, match="--resume needs a run"):
            load_journal(tmp_path / "nothing" / JOURNAL_NAME)

    def test_unrecognizable_file(self, tmp_path):
        path = tmp_path / JOURNAL_NAME
        path.write_bytes(b"not a journal at all")
        with pytest.raises(SymexError, match="unrecognizable"):
            load_journal(path)

    def test_died_before_first_checkpoint(self, tmp_path):
        from repro.solver.diskcache import HEADER

        path = tmp_path / JOURNAL_NAME
        path.write_bytes(HEADER)
        with pytest.raises(SymexError, match="no seed checkpoint"):
            load_journal(path)

    def test_meta_mismatch_names_both_runs(self, tmp_path):
        journal = _begin(tmp_path)
        journal.close()
        other = JournalMeta(setup="tests:other", engine_signature=("sig",))
        with pytest.raises(SymexError, match="different run"):
            load_journal(tmp_path / "run" / JOURNAL_NAME, other)

    def test_engine_signature_is_process_stable(self):
        a = engine_signature(EngineConfig())
        b = engine_signature(EngineConfig())
        assert a == b
        assert engine_signature(EngineConfig(max_paths=7)) != a


class TestOutstandingRegions:
    def test_nothing_journaled_everything_outstanding(self):
        frontier = ((True,), (False,))
        assert outstanding_regions(frontier, []) == [
            ((True,), ()), ((False,), ())]

    def test_completed_root_is_covered(self):
        frontier = ((True,), (False,))
        regions = [(((True,),), ())]
        assert outstanding_regions(frontier, regions) == [((False,), ())]

    def test_all_completed_nothing_outstanding(self):
        frontier = ((True,), (False,))
        regions = [(((True,), (False,)), ())]
        assert outstanding_regions(frontier, regions) == []

    def test_donated_subtree_becomes_a_candidate(self):
        """A region completed minus a donation leaves the donated
        subtree outstanding — under its own root, with no exclusions."""
        frontier = ((True,),)
        regions = [(((True,),), ((True, False),))]
        assert outstanding_regions(frontier, regions) == [
            ((True, False), ())]

    def test_completed_donation_closes_the_chain(self):
        frontier = ((True,),)
        regions = [(((True,),), ((True, False),)),
                   (((True, False),), ())]
        assert outstanding_regions(frontier, regions) == []

    def test_donation_chain_tracks_the_deepest_outstanding(self):
        """A donated B, B donated C: only C is outstanding."""
        frontier = ((True,),)
        regions = [(((True,),), ((True, False),)),
                   (((True, False),), ((True, False, True),))]
        assert outstanding_regions(frontier, regions) == [
            ((True, False, True), ())]

    def test_outstanding_root_excludes_nested_completions(self):
        """An unfinished frontier root carves out the completed regions
        strictly inside it — exactly the reclaim rule for dead workers."""
        frontier = ((True,), (False,))
        regions = [(((True, False),), ())]
        entries = outstanding_regions(frontier, regions)
        assert (((True,), ((True, False),))) in entries
        assert ((False,), ()) in entries

    def test_exclusion_set_is_minimal(self):
        """A completed root nested inside another excluded subtree is
        already carved out by it and must not repeat."""
        frontier = ((True,),)
        regions = [(((True, False),), ()),
                   (((True, False, True),), ())]
        entries = outstanding_regions(frontier, regions)
        assert entries == [((True,), ((True, False),))]


class TestSchedulerResumeParity:
    """Kill the coordinator at every checkpoint; resume must restore
    byte parity. A run that completes before reaching the kill target is
    a normal completion (checkpoint counts are scheduling-dependent)."""

    def _run(self, run_dir, resume=False, hook=None, interval=1):
        scheduler = ShardScheduler(
            tree_setup, TREE_ARGS, shards=2, seed_factor=2,
            run_dir=str(run_dir), checkpoint_interval=interval,
            resume=resume, checkpoint_hook=hook)
        return scheduler.run()

    def test_kill_at_every_checkpoint_resumes_byte_identical(self, tmp_path):
        serial = Engine(EngineConfig())
        program, _ = tree_setup(serial, *TREE_ARGS)
        baseline = serial.explore(program)
        kills_fired = 0
        target = 1
        while True:
            run_dir = tmp_path / f"kill-{target}"
            try:
                result = self._run(run_dir, hook=KillCoordinatorAt(target))
            except CoordinatorKilled:
                kills_fired += 1
                result = self._run(run_dir, resume=True)
                assert result.resumed_regions >= 0
                completed = False
            else:
                completed = True
            assert _signature(result.exploration) == _signature(baseline)
            assert result.exploration.executed == baseline.executed
            if completed:
                break
            target += 1
        assert kills_fired >= 1  # the harness must actually have killed

    def test_double_kill_still_resumes(self, tmp_path):
        serial = Engine(EngineConfig())
        program, _ = tree_setup(serial, *TREE_ARGS)
        baseline = serial.explore(program)
        run_dir = tmp_path / "run"
        with pytest.raises(CoordinatorKilled):
            self._run(run_dir, hook=KillCoordinatorAt(1))
        try:
            result = self._run(run_dir, resume=True,
                               hook=KillCoordinatorAt(1))
        except CoordinatorKilled:
            result = self._run(run_dir, resume=True)
        assert _signature(result.exploration) == _signature(baseline)

    def test_coarse_checkpoint_interval_resumes(self, tmp_path):
        """interval > 1 loses more on a kill but must still resume to
        the identical result."""
        serial = Engine(EngineConfig())
        program, _ = tree_setup(serial, *TREE_ARGS)
        baseline = serial.explore(program)
        run_dir = tmp_path / "run"
        try:
            result = self._run(run_dir, hook=KillCoordinatorAt(2),
                               interval=3)
        except CoordinatorKilled:
            result = self._run(run_dir, resume=True, interval=3)
        assert _signature(result.exploration) == _signature(baseline)

    def test_unjournaled_run_reports_zero_checkpoints(self, tmp_path):
        scheduler = ShardScheduler(tree_setup, TREE_ARGS, shards=2,
                                   seed_factor=2)
        result = scheduler.run()
        assert result.journal_checkpoints == 0
        assert result.resumed_regions == 0

    def test_resume_without_run_dir_rejected(self):
        with pytest.raises(SymexError, match="resume=True needs run_dir"):
            ShardScheduler(tree_setup, TREE_ARGS, shards=2, resume=True)

    def test_bad_checkpoint_interval_rejected(self):
        with pytest.raises(SymexError, match="checkpoint_interval"):
            ShardScheduler(tree_setup, TREE_ARGS, shards=2,
                           run_dir="/tmp/x", checkpoint_interval=0)

    def test_resume_against_different_setup_rejected(self, tmp_path):
        run_dir = tmp_path / "run"
        self._run(run_dir)  # a completed journaled run
        scheduler = ShardScheduler(
            tree_setup, (2, [9]), shards=2, seed_factor=2,
            engine_config=EngineConfig(max_paths=5),
            run_dir=str(run_dir), resume=True)
        with pytest.raises(SymexError, match="different run"):
            scheduler.run()
