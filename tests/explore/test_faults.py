"""The fault-injection harness and the recovery paths it drives.

Two layers of coverage: :class:`FaultyTransport` semantics against a
scripted in-memory transport (the plan fires exactly when and where the
script says), then end-to-end recovery runs over a real
``LocalTransport`` asserting the headline criterion — findings are
byte-identical with and without injected faults under
``on_worker_loss="recover"``.

Setup callables live at module level so worker processes can unpickle
them under any start method.
"""

import time
from collections import deque

import pytest

from repro.errors import SymexError
from repro.explore import (
    CoordinatorKilled,
    CorruptRecord,
    DelayResult,
    DropConnection,
    ExcludeControl,
    FaultPlan,
    FaultyTransport,
    GarbleResult,
    KillCoordinatorAt,
    KillWorker,
    LocalTransport,
    RefuseRespawn,
    ShardScheduler,
    TornWrite,
    Transport,
    TruncateSegment,
    apply_disk_fault,
)
from repro.explore.shard import MSG_DONE, extends
from repro.symex.engine import Engine, EngineConfig


def tree_setup(engine, depth, thresholds=()):
    def program(ctx):
        for i in range(depth):
            ctx.branch(ctx.fresh_bool(f"b{i}"))
        x = ctx.fresh_byte("x")
        for threshold in thresholds:
            ctx.branch(x < threshold)
    return program, None


def _signature(result):
    return [(p.path_id, p.verdict, p.decisions, p.constraints, p.labels)
            for p in result.paths]


def _serial(setup, args):
    engine = Engine(EngineConfig())
    program, observer = setup(engine, *args)
    return engine.explore(program, observer)


# -- FaultyTransport semantics against a scripted inner transport -------------


class _ScriptedTransport(Transport):
    """An in-memory transport: tests enqueue messages, record calls."""

    def __init__(self, workers=2):
        self.workers = workers
        self.inbox = deque()
        self.assigned = []
        self.respawned = []
        self.stopped = False

    @property
    def worker_count(self):
        return self.workers

    def start(self, count, session):
        self.workers = count

    def assign(self, wid, prefixes):
        self.assigned.append((wid, prefixes))

    def request_steal(self, wid):
        pass

    def acknowledge_done(self, wid):
        pass

    def recv(self, timeout):
        if self.inbox:
            return self.inbox.popleft()
        return None

    def alive(self, wid):
        return True

    def respawn(self, wid):
        self.respawned.append(wid)
        return True

    def describe(self, wid):
        return f"scripted worker {wid}"

    def stop(self):
        self.stopped = True


class TestFaultyTransportSemantics:
    def test_empty_plan_is_transparent(self):
        inner = _ScriptedTransport()
        faulty = FaultyTransport(inner, FaultPlan())
        inner.inbox.append((MSG_DONE, 0, "payload"))
        faulty.assign(0, [()])
        assert inner.assigned == [(0, [()])]
        assert faulty.recv(0.1) == (MSG_DONE, 0, "payload")
        assert faulty.alive(0)
        assert faulty.injected_kills == 0

    def test_kill_after_zero_results_severs_immediately(self):
        faulty = FaultyTransport(_ScriptedTransport(),
                                 FaultPlan(KillWorker(0, after_results=0)))
        assert not faulty.alive(0)
        assert faulty.alive(1)
        assert faulty.injected_kills == 1
        with pytest.raises(SymexError, match="unreachable"):
            faulty.assign(0, [()])
        assert "severed by fault plan" in faulty.describe(0)

    def test_kill_after_nth_result_lets_earlier_messages_through(self):
        inner = _ScriptedTransport()
        faulty = FaultyTransport(inner,
                                 FaultPlan(KillWorker(0, after_results=1)))
        inner.inbox.append((MSG_DONE, 0, "first"))
        inner.inbox.append((MSG_DONE, 0, "second"))
        assert faulty.recv(0.1) == (MSG_DONE, 0, "first")
        # One message delivered: the kill is due; the second is swallowed.
        assert faulty.recv(0.1) is None
        assert not faulty.alive(0)
        assert faulty.injected_kills == 1

    def test_drop_connection_behaves_like_kill(self):
        faulty = FaultyTransport(_ScriptedTransport(),
                                 FaultPlan(DropConnection(1)))
        assert not faulty.alive(1)
        assert faulty.alive(0)

    def test_severed_workers_messages_are_swallowed_not_delivered(self):
        inner = _ScriptedTransport()
        faulty = FaultyTransport(inner, FaultPlan(KillWorker(0)))
        inner.inbox.append((MSG_DONE, 0, "from the dead"))
        inner.inbox.append((MSG_DONE, 1, "alive"))
        assert faulty.recv(0.1) == (MSG_DONE, 1, "alive")

    def test_respawn_refused_then_granted(self):
        inner = _ScriptedTransport()
        faulty = FaultyTransport(
            inner, FaultPlan(KillWorker(0), RefuseRespawn(0, times=2)))
        assert not faulty.alive(0)
        assert not faulty.respawn(0)
        assert not faulty.respawn(0)
        assert faulty.refused_respawns == 2
        assert inner.respawned == []          # refusals never reach inner
        assert faulty.respawn(0)
        assert inner.respawned == [0]
        assert faulty.alive(0)                # severed state cleared

    def test_respawn_resets_delivery_count_for_second_kill(self):
        inner = _ScriptedTransport()
        faulty = FaultyTransport(
            inner, FaultPlan(KillWorker(0, after_results=0),
                             KillWorker(0, after_results=1)))
        assert not faulty.alive(0)
        assert faulty.respawn(0)
        assert faulty.alive(0)                # second kill needs 1 delivery
        inner.inbox.append((MSG_DONE, 0, "one"))
        assert faulty.recv(0.1) == (MSG_DONE, 0, "one")
        assert not faulty.alive(0)            # and now it fires
        assert faulty.injected_kills == 2

    def test_delay_result_sleeps_but_delivers(self):
        inner = _ScriptedTransport()
        faulty = FaultyTransport(inner,
                                 FaultPlan(DelayResult(0, nth=1,
                                                       seconds=0.05)))
        inner.inbox.append((MSG_DONE, 0, "slow"))
        before = time.monotonic()
        assert faulty.recv(1.0) == (MSG_DONE, 0, "slow")
        assert time.monotonic() - before >= 0.05
        assert faulty.alive(0)
        assert faulty.injected_kills == 0

    def test_garble_severs_the_stream(self):
        inner = _ScriptedTransport()
        faulty = FaultyTransport(inner, FaultPlan(GarbleResult(0, nth=1)))
        inner.inbox.append((MSG_DONE, 0, "garbled"))
        assert faulty.recv(0.1) is None       # dropped, stream severed
        assert not faulty.alive(0)
        assert faulty.injected_kills == 1

    def test_plan_repr_names_its_faults(self):
        plan = FaultPlan(KillWorker(3), RefuseRespawn(3, times=2))
        assert "KillWorker" in repr(plan)
        assert "RefuseRespawn" in repr(plan)


# -- ExcludeControl: the reclaim-without-double-merge mechanism ---------------


class TestExcludeControl:
    def test_extends_relation(self):
        assert extends((True, False), (True,))
        assert extends((True,), (True,))      # a subtree contains its root
        assert not extends((True,), (True, False))
        assert not extends((False, True), (True,))
        assert extends((True,), ())           # everything is under the root

    def test_filters_descendants_of_excluded_prefixes(self):
        control = ExcludeControl(exclude=((True,),))
        worklist = deque([(True,), (True, False), (False,), (False, True)])
        assert control.checkpoint(worklist)
        assert list(worklist) == [(False,), (False, True)]

    def test_empty_exclusion_leaves_worklist_untouched(self):
        control = ExcludeControl(exclude=())
        worklist = deque([(True,), (False,)])
        assert control.checkpoint(worklist)
        assert list(worklist) == [(True,), (False,)]

    def test_delegates_to_inner_control(self):
        class Stop:
            def checkpoint(self, worklist):
                return False

        control = ExcludeControl(exclude=((True,),), inner=Stop())
        assert control.checkpoint(deque()) is False


# -- end-to-end recovery over a real LocalTransport ---------------------------


TREE_ARGS = (4, [30, 200])


def _recover_run(plan, shards=2, max_worker_retries=2, seed_factor=2):
    faulty = FaultyTransport(LocalTransport(), plan)
    scheduler = ShardScheduler(tree_setup, TREE_ARGS, shards=shards,
                               seed_factor=seed_factor, transport=faulty,
                               on_worker_loss="recover",
                               max_worker_retries=max_worker_retries)
    return scheduler.run(), faulty


class TestRecoveryParity:
    def test_fault_free_recover_mode_matches_serial(self):
        """recover mode on a healthy run changes nothing at all."""
        serial = _serial(tree_setup, TREE_ARGS)
        sharded, faulty = _recover_run(FaultPlan())
        assert _signature(sharded.exploration) == _signature(serial)
        assert sharded.worker_failures == 0
        assert sharded.prefixes_reassigned == 0
        assert sharded.recovery_seconds == 0.0
        assert faulty.injected_kills == 0

    def test_killed_worker_recovers_byte_identical(self):
        serial = _serial(tree_setup, TREE_ARGS)
        sharded, faulty = _recover_run(
            FaultPlan(KillWorker(0, after_results=0)))
        assert faulty.injected_kills == 1
        assert sharded.worker_failures == 1
        assert sharded.prefixes_reassigned >= 1
        assert sharded.recovery_seconds > 0.0
        assert _signature(sharded.exploration) == _signature(serial)
        assert sharded.exploration.executed == serial.executed

    def test_kill_plus_refused_respawn_still_recovers(self):
        """First respawn refused, second granted — inside the default
        max_worker_retries=2 budget."""
        serial = _serial(tree_setup, TREE_ARGS)
        sharded, faulty = _recover_run(
            FaultPlan(KillWorker(0, after_results=0),
                      RefuseRespawn(0, times=1)))
        assert faulty.injected_kills == 1
        assert faulty.refused_respawns == 1
        assert sharded.worker_failures == 1
        assert _signature(sharded.exploration) == _signature(serial)

    def test_retries_exhausted_survivors_finish_the_work(self):
        """When a slot can never be respawned its region spreads over the
        survivors; the run completes and stays byte-identical."""
        serial = _serial(tree_setup, TREE_ARGS)
        sharded, faulty = _recover_run(
            FaultPlan(KillWorker(0, after_results=0),
                      RefuseRespawn(0, times=10)),
            max_worker_retries=2)
        assert faulty.refused_respawns == 2   # the whole retry budget
        assert sharded.worker_failures == 1
        assert _signature(sharded.exploration) == _signature(serial)

    def test_all_workers_lost_fails_loudly(self):
        plan = FaultPlan(KillWorker(0), KillWorker(1),
                         RefuseRespawn(0, times=10),
                         RefuseRespawn(1, times=10))
        faulty = FaultyTransport(LocalTransport(), plan)
        scheduler = ShardScheduler(tree_setup, TREE_ARGS, shards=2,
                                   seed_factor=2, transport=faulty,
                                   on_worker_loss="recover",
                                   max_worker_retries=1)
        with pytest.raises(SymexError, match="all shard workers were lost"):
            scheduler.run()

    def test_garbled_result_recovers_byte_identical(self):
        """A corrupted frame severs the worker; recovery re-runs its
        region and the merge stays canonical."""
        serial = _serial(tree_setup, TREE_ARGS)
        sharded, faulty = _recover_run(FaultPlan(GarbleResult(0, nth=1)))
        assert faulty.injected_kills == 1
        assert sharded.worker_failures == 1
        assert _signature(sharded.exploration) == _signature(serial)

    def test_delayed_result_is_not_a_death(self):
        """A slow message within the grace window must not trigger
        recovery — slow is not dead."""
        serial = _serial(tree_setup, TREE_ARGS)
        sharded, faulty = _recover_run(
            FaultPlan(DelayResult(0, nth=1, seconds=0.2)))
        assert sharded.worker_failures == 0
        assert _signature(sharded.exploration) == _signature(serial)

    def test_fail_mode_still_fails_under_injected_kill(self):
        """The default policy keeps today's loud-failure contract even
        when the death is injected rather than real — the error names
        the worker instead of recovering."""
        faulty = FaultyTransport(LocalTransport(),
                                 FaultPlan(KillWorker(0, after_results=0)))
        scheduler = ShardScheduler(tree_setup, TREE_ARGS, shards=2,
                                   seed_factor=2, transport=faulty)
        with pytest.raises(SymexError, match="local worker 0"):
            scheduler.run()


# -- disk faults: the persistence-layer fault vocabulary ----------------------


def _framed_file(tmp_path, payloads):
    from repro.solver.diskcache import write_segment

    path = tmp_path / "framed.qc"
    write_segment(path, payloads)
    return path


class TestDiskFaults:
    def test_truncate_cuts_the_tail(self, tmp_path):
        path = _framed_file(tmp_path, [b"abc", b"defg"])
        before = len(path.read_bytes())
        apply_disk_fault(path, TruncateSegment(drop_bytes=3))
        assert len(path.read_bytes()) == before - 3

    def test_corrupt_record_flips_one_payload_byte(self, tmp_path):
        path = _framed_file(tmp_path, [b"abc", b"defg"])
        before = path.read_bytes()
        apply_disk_fault(path, CorruptRecord(record=1, offset=2))
        after = path.read_bytes()
        assert len(after) == len(before)
        diffs = [i for i, (a, b) in enumerate(zip(before, after)) if a != b]
        assert len(diffs) == 1

    def test_corrupt_header_targets_the_file_header(self, tmp_path):
        from repro.solver.diskcache import MAGIC, scan_frames

        path = _framed_file(tmp_path, [b"abc"])
        apply_disk_fault(path, CorruptRecord(record=-1))
        data = path.read_bytes()
        assert data[:len(MAGIC)] != MAGIC
        assert scan_frames(data).reason == "unrecognized header"

    def test_torn_write_halves_the_final_payload(self, tmp_path):
        from repro.solver.diskcache import scan_frames

        path = _framed_file(tmp_path, [b"abc", b"defghijk"])
        apply_disk_fault(path, TornWrite())
        scan = scan_frames(path.read_bytes())
        assert scan.damaged and scan.reason == "torn final record"
        assert scan.payloads == [b"abc"]

    def test_unknown_fault_rejected(self, tmp_path):
        path = _framed_file(tmp_path, [b"abc"])
        with pytest.raises(SymexError, match="unknown disk fault"):
            apply_disk_fault(path, object())

    def test_kill_coordinator_fires_only_at_its_checkpoint(self):
        kill = KillCoordinatorAt(checkpoint_n=3)
        kill(1)
        kill(2)
        with pytest.raises(CoordinatorKilled, match="checkpoint 3"):
            kill(3)

    def test_coordinator_killed_is_not_a_symex_error(self):
        """Recovery code must see an injected kill as an abrupt crash,
        never as a catchable protocol failure."""
        assert not issubclass(CoordinatorKilled, SymexError)


class TestSchedulerPolicyValidation:
    def test_rejects_unknown_policy(self):
        with pytest.raises(SymexError, match="on_worker_loss"):
            ShardScheduler(tree_setup, TREE_ARGS, shards=2,
                           on_worker_loss="retry-forever")

    def test_rejects_negative_retry_budget(self):
        with pytest.raises(SymexError, match="max_worker_retries"):
            ShardScheduler(tree_setup, TREE_ARGS, shards=2,
                           max_worker_retries=-1)
