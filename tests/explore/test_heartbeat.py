"""HeartbeatControl: cadence, payload, chaining, observational purity."""

from collections import deque

from repro.explore.shard import HeartbeatControl


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


class Recorder:
    def __init__(self):
        self.payloads = []

    def __call__(self, payload):
        self.payloads.append(payload)


class CountingInner:
    def __init__(self, verdict=True):
        self.calls = 0
        self.verdict = verdict

    def checkpoint(self, worklist):
        self.calls += 1
        return self.verdict


class FakeStats:
    hits = 11
    misses = 4


class FakeCache:
    stats = FakeStats()


class FakeEngine:
    query_cache = FakeCache()


def test_emits_only_after_interval_elapses():
    clock = FakeClock()
    emit = Recorder()
    control = HeartbeatControl(1.0, emit, clock=clock)
    worklist = deque([(), ()])
    assert control.checkpoint(worklist) is True
    assert emit.payloads == []  # same instant as construction
    clock.now = 0.5
    control.checkpoint(worklist)
    assert emit.payloads == []
    clock.now = 1.0
    control.checkpoint(worklist)
    assert len(emit.payloads) == 1
    assert emit.payloads[0] == {"paths": 3, "worklist": 2}
    # the beat resets the window
    clock.now = 1.5
    control.checkpoint(worklist)
    assert len(emit.payloads) == 1
    assert control.sent == 1
    assert control.paths == 4


def test_engine_gauges_ride_the_payload():
    clock = FakeClock()
    emit = Recorder()
    control = HeartbeatControl(1.0, emit, engine=FakeEngine(), clock=clock)
    clock.now = 2.0
    control.checkpoint(deque())
    assert emit.payloads[0]["cache_hits"] == 11
    assert emit.payloads[0]["cache_misses"] == 4


def test_chains_inner_and_returns_its_verdict():
    clock = FakeClock()
    inner = CountingInner(verdict=False)
    control = HeartbeatControl(10.0, Recorder(), inner=inner, clock=clock)
    assert control.checkpoint(deque()) is False
    assert inner.calls == 1


def test_never_mutates_the_worklist():
    clock = FakeClock()
    control = HeartbeatControl(1.0, Recorder(), clock=clock)
    worklist = deque([(True,), (False,)])
    clock.now = 5.0
    control.checkpoint(worklist)
    assert list(worklist) == [(True,), (False,)]
