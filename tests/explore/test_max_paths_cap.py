"""Executable spec: ``max_paths`` caps degrade to per-shard granularity.

ROADMAP open item, pinned before it gets fixed: with ``shards > 1`` the
``max_paths`` cap applies per worker assignment (the seed phase and each
shard budget independently), so a capped sharded run explores *more*
than a capped serial run and byte parity with the serial engine is NOT
claimed — parity is only guaranteed for runs that drain the tree below
the cap. What a capped sharded run must still honour is soundness: every
finding it does produce is a genuine member of ``PS \\ PC``.

If a future PR implements a global cross-shard cap, the lower bounds
here stay valid and the parity assertion below can be tightened.
"""

import itertools

import pytest

from repro.achilles import Achilles, AchillesConfig
from repro.bench.experiments import FSP_SESSION_MASK, make_engine_config
from repro.systems import fsp

#: Small enough to truncate the 2-command FSP tree (~300 paths) hard.
CAP = 10

#: Large enough that every run drains the tree.
DRAIN = 10_000

#: The run's client subset. The soundness oracle below must use the same
#: subset: server paths for the other six utilities are genuine Trojans
#: relative to this run's PC even though the full client set covers them.
CLIENT_COMMANDS = dict(itertools.islice(fsp.COMMANDS.items(), 2))


def _generable_by_run_clients(witness: bytes) -> bool:
    from repro.messages.concrete import decode_ints

    return (fsp.is_client_generable(witness)
            and decode_ints(fsp.FSP_LAYOUT, witness)["cmd"]
            in CLIENT_COMMANDS.values())


def _run(shards: int, max_paths: int | None):
    config = AchillesConfig(
        layout=fsp.FSP_LAYOUT, mask=FSP_SESSION_MASK,
        server_engine=make_engine_config(None, max_paths),
        shards=shards)
    with Achilles(config) as achilles:
        predicates = achilles.extract_clients(
            fsp.literal_clients(CLIENT_COMMANDS))
        return achilles.search(fsp.fsp_server, predicates)


def _signature(report):
    return [(f.server_path_id, f.decisions, f.witness) for f in report.findings]


@pytest.fixture(scope="module")
def serial_uncapped():
    return _run(1, None)


@pytest.fixture(scope="module")
def serial_capped():
    return _run(1, CAP)


@pytest.fixture(scope="module")
def sharded_capped():
    return _run(2, CAP)


class TestSerialCap:
    def test_cap_is_exact_in_serial_runs(self, serial_uncapped, serial_capped):
        assert serial_uncapped.server_paths_explored > CAP  # cap binds
        assert serial_capped.server_paths_explored == CAP

    def test_serial_capped_findings_prefix_the_uncapped_run(
            self, serial_uncapped, serial_capped):
        # DFS completes paths in a deterministic order, so truncating at
        # the cap truncates the findings list — a prefix, never a reshuffle.
        full = _signature(serial_uncapped)
        capped = _signature(serial_capped)
        assert capped == full[:len(capped)]


class TestShardedCap:
    def test_cap_degrades_to_per_shard_granularity(self, sharded_capped):
        # The documented behavior: each shard assignment (and the seed
        # phase) budgets max_paths independently, so the union exceeds
        # the serial cap. A global cross-shard cap would make this an
        # equality — tighten it then.
        assert sharded_capped.shards == 2
        assert sharded_capped.server_paths_explored >= CAP

    def test_no_silent_parity_claim_but_soundness_holds(self, sharded_capped):
        # Byte parity with the serial capped run is NOT asserted (which
        # findings land depends on the shard partition); soundness is:
        # everything reported is accepted-but-ungenerable.
        assert sharded_capped.trojan_count > 0
        for witness in sharded_capped.witnesses():
            assert fsp.is_server_accepted(witness)
            assert not _generable_by_run_clients(witness)

    def test_drained_runs_restore_byte_parity(self):
        # The guarantee's boundary: a cap high enough to drain the tree
        # is no cap at all, and the shard merge is byte-identical again.
        assert _signature(_run(2, DRAIN)) == _signature(_run(1, DRAIN))
