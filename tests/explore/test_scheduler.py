"""Sharded exploration must be byte-identical to the serial engine.

The setup callables live at module level (with picklable args) so the
scheduler can ship them to worker processes under any multiprocessing
start method.
"""

import os
import signal
from collections import deque

import pytest

from repro.errors import SymexError
from repro.explore import (
    ExcludeControl,
    ShardScheduler,
    Transport,
    merge_outcomes,
)
from repro.explore.scheduler import _Booking
from repro.explore.shard import (
    MSG_DONATE,
    MSG_DONE,
    Assignment,
    run_assignment,
)
from repro.symex.engine import Engine, EngineConfig
from repro.symex.observers import PathObserver


def tree_setup(engine, depth, thresholds=()):
    """A full binary tree (fresh boolean per level) plus an optional
    threshold cascade on a byte, so paths carry real constraints."""
    def program(ctx):
        for i in range(depth):
            ctx.branch(ctx.fresh_bool(f"b{i}"))
        x = ctx.fresh_byte("x")
        for threshold in thresholds:
            ctx.branch(x < threshold)
    return program, None


def skewed_setup(engine, depth):
    """One shallow subtree and one bushy deep one — the stealing
    workload: whoever draws the shallow prefix goes idle immediately."""
    def program(ctx):
        if ctx.branch(ctx.fresh_bool("shallow")):
            return  # shallow side: done immediately
        for i in range(depth):
            ctx.branch(ctx.fresh_bool(f"deep{i}"))
    return program, None


def failing_setup(engine, parent_pid):
    """Explodes only inside shard workers (pid differs from coordinator)."""
    def program(ctx):
        for i in range(4):
            ctx.branch(ctx.fresh_bool(f"b{i}"))
        if os.getpid() != parent_pid:
            raise RuntimeError("worker boom")
    return program, None


def dying_setup(engine, parent_pid):
    """Hard-kills the worker process mid-run — no MSG_ERROR possible."""
    def program(ctx):
        for i in range(4):
            ctx.branch(ctx.fresh_bool(f"b{i}"))
        if os.getpid() != parent_pid:
            os.kill(os.getpid(), signal.SIGKILL)
    return program, None


def die_once_setup(engine, coordinator_pid, marker):
    """SIGKILLs the first worker process to finish a path — exactly once
    across the whole run, via an O_EXCL marker file — so a recovery run
    sees one real death and its respawned replacement completes."""
    def program(ctx):
        for i in range(4):
            ctx.branch(ctx.fresh_bool(f"b{i}"))
        x = ctx.fresh_byte("x")
        ctx.branch(x < 100)
        if os.getpid() != coordinator_pid:
            try:
                fd = os.open(marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                return
            os.close(fd)
            os.kill(os.getpid(), signal.SIGKILL)
    return program, None


def plain_observer_setup(engine):
    program, _ = tree_setup(engine, 4)
    return program, PathObserver()


def _signature(result):
    return [(p.path_id, p.verdict, p.decisions, p.constraints, p.labels)
            for p in result.paths]


def _serial(setup, args):
    engine = Engine(EngineConfig())
    program, observer = setup(engine, *args)
    return engine.explore(program, observer)


class TestShardedParity:
    @pytest.mark.parametrize("shards", [1, 2, 3])
    def test_tree_matches_serial(self, shards):
        args = (4, [30, 80, 200])
        serial = _serial(tree_setup, args)
        sharded = ShardScheduler(tree_setup, args, shards=shards,
                                 seed_factor=2).run()
        assert _signature(sharded.exploration) == _signature(serial)
        assert sharded.exploration.executed == serial.executed
        assert (sharded.exploration.stats.paths_finished
                == serial.stats.paths_finished)
        assert sharded.exploration.stats.forks == serial.stats.forks

    def test_skewed_tree_matches_serial(self):
        """A lopsided tree forces rebalancing; output must not change."""
        serial = _serial(skewed_setup, (7,))
        sharded = ShardScheduler(skewed_setup, (7,), shards=2,
                                 seed_factor=1).run()
        assert _signature(sharded.exploration) == _signature(serial)

    def test_tiny_tree_never_spawns_workers(self):
        """A tree smaller than the frontier target is done at seed time."""
        serial = _serial(tree_setup, (1,))
        sharded = ShardScheduler(tree_setup, (1,), shards=4).run()
        assert _signature(sharded.exploration) == _signature(serial)
        assert sharded.steals == 0

    def test_path_ids_cover_every_executed_path(self):
        sharded = ShardScheduler(tree_setup, (4, [100]), shards=2).run()
        assert set(sharded.path_ids.values()) == set(
            range(len(sharded.exploration.executed)))


class TestSchedulerValidation:
    def test_rejects_bad_shard_count(self):
        with pytest.raises(SymexError, match=">= 1"):
            ShardScheduler(tree_setup, (2,), shards=0)

    def test_worker_failure_surfaces_with_traceback(self):
        scheduler = ShardScheduler(failing_setup, (os.getpid(),), shards=2,
                                   seed_factor=1)
        with pytest.raises(SymexError, match="boom"):
            scheduler.run()

    def test_killed_worker_detected_instead_of_hanging(self):
        """A SIGKILLed worker can't send MSG_ERROR; the coordinator's
        liveness check must surface it rather than poll forever — and the
        error must name who died and the assignment that died with it."""
        scheduler = ShardScheduler(dying_setup, (os.getpid(),), shards=2,
                                   seed_factor=1)
        with pytest.raises(SymexError) as excinfo:
            scheduler.run()
        message = str(excinfo.value)
        assert "died without reporting a result" in message
        assert "local worker" in message          # who
        assert "prefix(es)" in message            # what it was holding

    def test_non_delta_observer_rejected(self):
        scheduler = ShardScheduler(plain_observer_setup, (), shards=2)
        with pytest.raises(SymexError, match="delta-capable"):
            scheduler.run()


class TestWorkerLossRecovery:
    def test_sigkilled_worker_recovers_byte_identical(self, tmp_path):
        """A real SIGKILL (not an injected fault): with
        ``on_worker_loss="recover"`` the dead worker's prefixes re-run on
        a respawned process and the merged result matches the serial
        engine path-for-path."""
        marker = str(tmp_path / "killed-once")
        args = (os.getpid(), marker)
        serial = _serial(die_once_setup, args)
        scheduler = ShardScheduler(die_once_setup, args, shards=2,
                                   seed_factor=1, on_worker_loss="recover")
        sharded = scheduler.run()
        assert os.path.exists(marker), "the kill never fired"
        assert sharded.worker_failures == 1
        assert sharded.prefixes_reassigned >= 1
        assert sharded.recovery_seconds > 0.0
        assert _signature(sharded.exploration) == _signature(serial)
        assert sharded.exploration.executed == serial.executed

    def test_fault_free_run_reports_zero_recovery_counters(self):
        sharded = ShardScheduler(tree_setup, (4, [100]), shards=2,
                                 on_worker_loss="recover").run()
        assert sharded.worker_failures == 0
        assert sharded.prefixes_reassigned == 0
        assert sharded.recovery_seconds == 0.0


class TestMergeReclaimSoundness:
    """Reclaiming a dead worker's roots must not re-explore subtrees it
    had donated — the merge rejects the overlap; ``ExcludeControl``
    carves the donation out exactly."""

    def test_naive_rerun_of_donated_subtree_rejected_by_merge(self):
        full = run_assignment(Engine(EngineConfig()), tree_setup, (3,), [()])
        donated = run_assignment(Engine(EngineConfig()), tree_setup, (3,),
                                 [(False,)])
        with pytest.raises(SymexError, match="overlap"):
            merge_outcomes([full, donated])

    def test_exclusion_carves_out_the_donated_subtree(self):
        """Re-running the dead worker's root with its donation excluded
        plus the donation's own run merges cleanly into the serial tree.
        (The excluded prefix ends in False — donations always do, since
        the worklist holds the not-taken side of each fork.)"""
        rest = run_assignment(Engine(EngineConfig()), tree_setup, (3,), [()],
                              control=ExcludeControl(((False,),)))
        donated = run_assignment(Engine(EngineConfig()), tree_setup, (3,),
                                 [(False,)])
        merged = merge_outcomes([rest, donated])
        serial = _serial(tree_setup, (3,))
        assert _signature(merged.exploration) == _signature(serial)
        assert merged.exploration.executed == serial.executed


class _DonateRootThenDieTransport(Transport):
    """Inline transport scripting one exact schedule: worker 0's first
    multi-root assignment donates an *untouched whole root* back to the
    coordinator, then the worker dies silently (no DONE, no error frame
    — ``alive()`` just turns False, like a SIGKILL). Every other
    assignment — including the respawned slot's — runs synchronously
    in-process, so the schedule is fully deterministic."""

    def __init__(self):
        self.inbox = deque()
        self.donated = None
        self._session = None
        self._alive = {}

    def start(self, count, session):
        self.worker_count = count
        self._session = session
        self._alive = {wid: True for wid in range(count)}

    def assign(self, wid, prefixes):
        assignment = (prefixes if isinstance(prefixes, Assignment)
                      else Assignment(roots=tuple(prefixes)))
        if wid == 0 and self.donated is None and len(assignment.roots) > 1:
            self.donated = assignment.roots[-1]
            self.inbox.append((MSG_DONATE, wid, [self.donated]))
            self._alive[wid] = False
            return
        engine = Engine(self._session.engine_config)
        control = (ExcludeControl(assignment.exclude)
                   if assignment.exclude else None)
        outcome = run_assignment(engine, self._session.setup,
                                 self._session.setup_args,
                                 list(assignment.roots), control)
        self.inbox.append((MSG_DONE, wid, outcome))

    def request_steal(self, wid):
        pass  # assignments complete inline; nothing to steal from

    def acknowledge_done(self, wid):
        pass

    def recv(self, timeout):
        if self.inbox:
            return self.inbox.popleft()
        return None

    def alive(self, wid):
        return self._alive.get(wid, True)

    def respawn(self, wid):
        self._alive[wid] = True
        return True

    def describe(self, wid):
        return f"inline worker {wid}"

    def stop(self):
        pass


class TestReclaimAfterDonation:
    def test_donated_whole_root_is_not_requeued_on_recovery(self):
        """The uncovered schedule from the review: a worker donates an
        untouched root of its multi-root assignment, *then* dies. The
        reclaim must skip that root — its subtree already ran via the
        donation — or the merge rejects the overlap and the run crashes
        despite on_worker_loss='recover'."""
        args = (4, [100])
        serial = _serial(tree_setup, args)
        transport = _DonateRootThenDieTransport()
        scheduler = ShardScheduler(tree_setup, args, shards=2,
                                   seed_factor=2, transport=transport,
                                   on_worker_loss="recover")
        sharded = scheduler.run()
        assert transport.donated is not None, "the scripted donation " \
            "never fired (assignment held a single root?)"
        assert sharded.worker_failures == 1
        assert sharded.steals == 1
        assert _signature(sharded.exploration) == _signature(serial)
        assert sharded.exploration.executed == serial.executed

    def test_recover_skips_fully_donated_root(self):
        """Unit-level pin: a booking root equal to (or inside) a donated
        subtree must not come back as pending work, and must not count
        as reassigned."""
        scheduler = ShardScheduler(tree_setup, (3,), shards=2,
                                   on_worker_loss="recover",
                                   max_worker_retries=0)
        pending = deque()
        active = {0, 1}
        assigned = {0: _Booking(roots=[(False,), (True,)],
                                exclude=[(True,), (False, True)])}
        scheduler._recover(0, pending, idle=set(), active=active,
                           assigned=assigned, steal_pending=set(),
                           retries={0: 0, 1: 0})
        # (True,) was donated whole — it belongs to its new owner; only
        # (False,) returns, minus its own donated (False, True) subtree.
        assert list(pending) == [((False,), ((False, True),))]
        assert scheduler._prefixes_reassigned == 1
        assert 0 not in active  # zero retries: the slot is written off


class TestTakeBatchDeduplication:
    def test_duplicate_roots_collapse_with_exclusions_merged(self):
        """Two pending entries for the same root (a double-enqueued
        reclaim) must not both seed one worker's worklist; the
        duplicate's exclusions still mark subtrees owned elsewhere."""
        pending = deque([((False,), ()), ((False,), ((False, True),))])
        booking = ShardScheduler._take_batch(pending, 2)
        assert booking.roots == [(False,)]
        assert booking.exclude == [(False, True)]
        assert not pending

    def test_entry_carved_out_by_batch_exclusion_is_deferred_not_dropped(
            self):
        """The legitimate nesting: the batch explores () minus (False,),
        and the (False,) entry is someone's donated region — it must be
        deferred to its own batch, never silently dropped."""
        pending = deque([((), ((False,),)), ((False,), ())])
        booking = ShardScheduler._take_batch(pending, 2)
        assert booking.roots == [()]
        assert booking.exclude == [(False,)]
        assert list(pending) == [((False,), ())]

    def test_root_containing_an_accepted_root_is_deferred(self):
        """The other overlap direction: a candidate whose subtree
        contains an already-accepted root would double-seed it."""
        pending = deque([((False, True), ()), ((False,), ())])
        booking = ShardScheduler._take_batch(pending, 2)
        assert booking.roots == [(False, True)]
        assert list(pending) == [((False,), ())]
