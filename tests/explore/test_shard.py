"""Units for the shard-side primitives and the deterministic merge."""

from collections import deque

import pytest

from repro.errors import SymexError
from repro.explore.merge import merge_outcomes
from repro.explore.shard import FrontierControl, ShardOutcome, StealControl
from repro.symex.engine import Engine, EngineConfig, ExplorationStats
from repro.symex.state import canonical_key


def _chain_program(thresholds):
    def program(ctx):
        x = ctx.fresh_byte("x")
        for threshold in thresholds:
            ctx.branch(x < threshold)
    return program


class _Flag:
    """Minimal stand-in for a multiprocessing.Event."""

    def __init__(self, value=False):
        self.value = value

    def is_set(self):
        return self.value

    def set(self):
        self.value = True

    def clear(self):
        self.value = False


class TestCanonicalKey:
    def test_true_sorts_before_false(self):
        assert canonical_key((True,)) < canonical_key((False,))
        assert canonical_key((True, False)) < canonical_key((False, True))

    def test_matches_serial_dfs_completion_order(self):
        """Serial DFS path ids are exactly canonical-key ranks."""
        result = Engine(EngineConfig()).explore(_chain_program([50, 120, 200]))
        keys = [canonical_key(decisions)
                for decisions, _verdict in result.executed]
        assert keys == sorted(keys)


def _tree_program(depth):
    """A full binary tree: every level branches on a fresh boolean."""
    def program(ctx):
        for i in range(depth):
            ctx.branch(ctx.fresh_bool(f"b{i}"))
    return program


class TestFrontierControl:
    def test_stops_once_worklist_reaches_target(self):
        engine = Engine(EngineConfig())
        result = engine.explore(_tree_program(4), control=FrontierControl(3))
        assert len(result.frontier) >= 3
        # The run stopped early: frontier + executed must cover the tree.
        total = Engine(EngineConfig()).explore(_tree_program(4))
        assert len(result.executed) < len(total.executed)

    def test_frontier_replay_covers_the_tree(self):
        """Replaying every frontier prefix completes the seed run exactly."""
        engine = Engine(EngineConfig())
        seed = engine.explore(_tree_program(4), control=FrontierControl(3))
        executed = list(seed.executed)
        for prefix in seed.frontier:
            part = Engine(EngineConfig()).explore(_tree_program(4),
                                                  roots=[prefix])
            executed.extend(part.executed)
        serial = Engine(EngineConfig()).explore(_tree_program(4))
        assert (sorted(executed, key=lambda e: canonical_key(e[0]))
                == serial.executed)

    def test_drained_tree_leaves_empty_frontier(self):
        result = Engine(EngineConfig()).explore(_chain_program([10]),
                                                control=FrontierControl(50))
        assert result.frontier == ()


class TestStealControl:
    def test_donates_shallowest_half_on_request(self):
        donations = []
        control = StealControl(_Flag(True), donations.append)
        worklist = deque([(True,), (True, False), (True, False, False),
                          (False,)])
        assert control.checkpoint(worklist) is True
        assert donations == [[(True,), (True, False)]]
        assert list(worklist) == [(True, False, False), (False,)]
        assert not control.flag.is_set()

    def test_empty_donation_still_reported(self):
        donations = []
        control = StealControl(_Flag(True), donations.append)
        worklist = deque([(True,)])
        control.checkpoint(worklist)
        assert donations == [[]]
        assert list(worklist) == [(True,)]

    def test_no_request_no_donation(self):
        donations = []
        control = StealControl(_Flag(False), donations.append)
        worklist = deque([(True,), (False,)])
        control.checkpoint(worklist)
        assert donations == []
        assert len(worklist) == 2


class TestMergeOutcomes:
    def test_renumbers_canonically_regardless_of_outcome_order(self):
        serial = Engine(EngineConfig()).explore(_chain_program([40, 90, 180]))
        # Split the serial run's paths into two fake shard outcomes in a
        # scrambled order; the merge must rebuild serial numbering.
        half = len(serial.executed) // 2
        outcome_a = ShardOutcome(
            executed=serial.executed[half:],
            paths=[p for p in serial.paths
                   if (p.decisions, p.verdict) in serial.executed[half:]],
            stats=ExplorationStats())
        outcome_b = ShardOutcome(
            executed=serial.executed[:half],
            paths=[p for p in serial.paths
                   if (p.decisions, p.verdict) in serial.executed[:half]],
            stats=ExplorationStats())
        merged = merge_outcomes([outcome_a, outcome_b])
        assert [(p.path_id, p.decisions, p.constraints, p.verdict)
                for p in merged.exploration.paths] == \
               [(p.path_id, p.decisions, p.constraints, p.verdict)
                for p in serial.paths]
        assert merged.exploration.executed == serial.executed

    def test_overlapping_outcomes_rejected(self):
        serial = Engine(EngineConfig()).explore(_chain_program([40]))
        outcome = ShardOutcome(executed=serial.executed, paths=serial.paths,
                               stats=ExplorationStats())
        with pytest.raises(SymexError, match="overlap"):
            merge_outcomes([outcome, outcome])

    def test_counters_summed(self):
        serial = Engine(EngineConfig()).explore(_chain_program([40, 90]))
        half = len(serial.executed) // 2
        outcomes = [
            ShardOutcome(executed=serial.executed[:half],
                         stats=ExplorationStats(paths_finished=half)),
            ShardOutcome(executed=serial.executed[half:],
                         stats=ExplorationStats(
                             paths_finished=len(serial.executed) - half)),
        ]
        merged = merge_outcomes(outcomes)
        assert merged.exploration.stats.paths_finished == len(serial.executed)
