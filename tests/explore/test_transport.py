"""Unit tests for the transport layer: frame codec, resolution, snapshots.

The end-to-end socket behaviour (parity with the local transport, worker
death, remote tracebacks) lives in
``tests/integration/test_transport_parity.py``; this file covers the
pieces in isolation.
"""

import pickle
import socket
import struct
import threading
import time

import pytest

from repro.errors import SymexError
from repro.explore import LocalTransport, Transport, resolve_transport
from repro.explore.tcp import (
    MSG_HELLO,
    PROTOCOL_VERSION,
    FrameReader,
    TcpTransport,
    parse_hostport,
    send_frame,
)
from repro.solver.ast import bv_const, bv_var, ult
from repro.solver.cache import QueryCache
from repro.symex.engine import EngineConfig


def _socketpair():
    left, right = socket.socketpair()
    left.settimeout(5.0)
    right.settimeout(5.0)
    return left, right


class TestFrameCodec:
    def test_round_trip_one_frame(self):
        left, right = _socketpair()
        with left, right:
            send_frame(left, "task", [(True, False), (False,)])
            reader = FrameReader(right)
            while not reader.pending():
                assert reader.feed()
            assert reader.next_frame() == ("task", [(True, False), (False,)])

    def test_multiple_frames_in_one_read(self):
        """One recv can deliver several frames; pending() must surface
        each of them without another socket read."""
        left, right = _socketpair()
        with left, right:
            for i in range(3):
                send_frame(left, "task", i)
            left.shutdown(socket.SHUT_WR)
            reader = FrameReader(right)
            got = []
            while True:
                if reader.pending():
                    got.append(reader.next_frame())
                    continue
                if not reader.feed():
                    break
            assert got == [("task", 0), ("task", 1), ("task", 2)]

    def test_expressions_survive_the_wire(self):
        """Hash-consed expressions re-intern on unpickle: a frame-carried
        constraint is identical (is-comparable) to the local build."""
        left, right = _socketpair()
        constraint = ult(bv_var("msg_0", 8), bv_const(42, 8))
        with left, right:
            send_frame(left, "done", (constraint,))
            reader = FrameReader(right)
            while not reader.pending():
                assert reader.feed()
            _, (received,) = reader.next_frame()
            assert received is constraint

    def test_oversized_frame_rejected(self):
        left, right = _socketpair()
        with left, right:
            left.sendall((1 << 30).to_bytes(4, "big"))
            reader = FrameReader(right)
            reader.feed()
            with pytest.raises(SymexError, match="oversized frame"):
                reader.pending()

    def test_recv_blocking_times_out_loudly(self):
        left, right = _socketpair()
        with left, right:
            reader = FrameReader(right)
            with pytest.raises(SymexError, match="timed out"):
                reader.recv_blocking(timeout=0.05)

    def test_recv_blocking_returns_none_on_eof(self):
        left, right = _socketpair()
        with right:
            left.close()
            reader = FrameReader(right)
            assert reader.recv_blocking(timeout=1.0) is None

    def test_recv_blocking_restores_previous_socket_timeout(self):
        """The blocking read must not clobber the socket's configured
        timeout — later polling reads rely on it."""
        left, right = _socketpair()
        with left, right:
            send_frame(left, "task", 1)
            reader = FrameReader(right)
            assert reader.recv_blocking(timeout=0.5) == ("task", 1)
            assert right.gettimeout() == 5.0
            # Also after a timeout (the error path runs the same finally).
            with pytest.raises(SymexError, match="timed out"):
                reader.recv_blocking(timeout=0.05)
            assert right.gettimeout() == 5.0


class TestParseHostport:
    def test_parses_host_and_port(self):
        assert parse_hostport("10.0.0.7:9100") == ("10.0.0.7", 9100)

    def test_rejects_missing_port(self):
        with pytest.raises(SymexError, match="expected 'host:port'"):
            parse_hostport("justahost")

    def test_rejects_non_integer_port(self):
        with pytest.raises(SymexError, match="not an integer"):
            parse_hostport("host:ninety")

    def test_rejects_empty_host(self):
        with pytest.raises(SymexError, match="expected 'host:port'"):
            parse_hostport(":9100")


class TestResolveTransport:
    def test_default_is_local(self):
        assert isinstance(resolve_transport(None), LocalTransport)
        assert isinstance(resolve_transport("local"), LocalTransport)

    def test_hosts_imply_tcp(self):
        transport = resolve_transport(None, ("127.0.0.1:9100",))
        assert isinstance(transport, TcpTransport)

    def test_instance_passes_through(self):
        instance = LocalTransport()
        assert resolve_transport(instance) is instance

    def test_tcp_without_hosts_rejected(self):
        with pytest.raises(SymexError, match="needs at least one"):
            resolve_transport("tcp")

    def test_local_with_hosts_rejected(self):
        with pytest.raises(SymexError, match="does not take hosts"):
            resolve_transport("local", ("127.0.0.1:9100",))

    def test_unknown_name_rejected(self):
        with pytest.raises(SymexError, match="unknown transport"):
            resolve_transport("carrier-pigeon")


class TestTcpConnectFailure:
    def test_unreachable_host_fails_with_guidance(self):
        # A bound-but-never-accepting port is indistinguishable from a
        # dead daemon; grab a fresh port and close it so connect fails.
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        transport = TcpTransport([f"127.0.0.1:{port}"],
                                 connect_timeout=0.3, retry_interval=0.05)
        from repro.explore.transport import WorkerSession

        with pytest.raises(SymexError, match="repro worker --listen"):
            transport.start(1, WorkerSession(setup=None))

    def test_connect_failure_reports_backoff_attempts(self):
        """The error must say how hard it tried: attempt count and the
        backoff discipline, so a flaky-network failure is debuggable."""
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        transport = TcpTransport([f"127.0.0.1:{port}"],
                                 connect_timeout=0.3, retry_interval=0.05)
        from repro.explore.transport import WorkerSession

        with pytest.raises(SymexError,
                           match=r"\d+ attempt\(s\)") as excinfo:
            transport.start(1, WorkerSession(setup=None))
        assert "exponential backoff" in str(excinfo.value)

    def test_non_worker_endpoint_rejected_at_handshake(self):
        """Connecting to something that is not a repro worker must fail
        at the hello, not deep inside an unpickle."""
        server = socket.create_server(("127.0.0.1", 0))
        port = server.getsockname()[1]

        def bogus_peer():
            conn, _ = server.accept()
            with conn:
                send_frame(conn, "greetings", 99)

        thread = threading.Thread(target=bogus_peer, daemon=True)
        thread.start()
        transport = TcpTransport([f"127.0.0.1:{port}"], connect_timeout=2.0)
        from repro.explore.transport import WorkerSession

        with server:
            with pytest.raises(SymexError, match="not a compatible"):
                transport.start(1, WorkerSession(setup=None))
        thread.join(timeout=5.0)

    def test_hello_frame_shape(self):
        assert pickle.loads(pickle.dumps((MSG_HELLO, PROTOCOL_VERSION))) \
            == (MSG_HELLO, PROTOCOL_VERSION)


class TestRecvStallDeadline:
    """The per-worker recv deadline fires on a frame that *stops
    growing*, never on a large frame that is still arriving — slow is
    not dead."""

    def _transport_with_reader(self, deadline):
        transport = TcpTransport(["127.0.0.1:9100"], recv_deadline=deadline)
        left, right = _socketpair()
        transport._socks = [right]
        transport._readers = [FrameReader(right)]
        return transport, left, transport._readers[0]

    def test_growing_frame_resets_the_stall_clock(self):
        """Bytes keep landing, each gap longer than the deadline: the
        worker must stay alive — the transfer is making progress."""
        transport, left, reader = self._transport_with_reader(0.05)
        with left, reader.sock:
            left.sendall(b"\x00")  # frame torso begins (partial header)
            reader.feed()
            transport._check_stalls()
            for _ in range(3):
                time.sleep(0.06)   # past the deadline every time...
                left.sendall(b"\x00")  # ...but another byte arrives
                reader.feed()
                transport._check_stalls()
            assert transport.alive(0)

    def test_frame_that_stops_growing_is_a_death(self):
        transport, left, reader = self._transport_with_reader(0.05)
        with left, reader.sock:
            left.sendall(b"\x00")
            reader.feed()
            transport._check_stalls()  # clock starts
            time.sleep(0.06)
            transport._check_stalls()  # no new bytes for > deadline
            assert not transport.alive(0)

    def test_completed_frame_clears_the_stall_clock(self):
        transport, left, reader = self._transport_with_reader(0.05)
        body = pickle.dumps(("done", 1), protocol=pickle.HIGHEST_PROTOCOL)
        frame = struct.pack(">I", len(body)) + body
        with left, reader.sock:
            left.sendall(frame[:3])
            reader.feed()
            transport._check_stalls()
            assert 0 in transport._partial_since
            left.sendall(frame[3:])    # the rest arrives; frame complete
            reader.feed()
            transport._check_stalls()
            assert 0 not in transport._partial_since
            assert reader.pending()
            assert transport.alive(0)


class TestCacheSnapshot:
    def _key(self, cache, byte):
        return cache.key((ult(bv_var("m_0", 8), bv_const(byte, 8)),))

    def test_snapshot_ships_feasibility_only(self):
        cache = QueryCache()
        key = self._key(cache, 10)
        cache.put_feasible(key, True)
        model_key = self._key(cache, 20)
        cache.put_model(model_key, {bv_var("m_0", 8): 5})
        snapshot = cache.snapshot()
        # put_model implies feasibility, so both keys appear — but only
        # as booleans; the model itself must not travel.
        assert snapshot == {key: True, model_key: True}

    def test_absorb_preloads_and_counts_new_entries(self):
        source, target = QueryCache(), QueryCache()
        key = self._key(source, 33)
        source.put_feasible(key, False)
        assert target.absorb(source.snapshot()) == 1
        assert target.absorb(source.snapshot()) == 0  # idempotent
        # The absorbed answer is served as an ordinary hit.
        assert target.get_feasible(key) is False
        assert target.stats.hits == 1
        assert target.stats.misses == 0

    def test_absorb_never_overwrites_local_entries(self):
        local, remote = QueryCache(), QueryCache()
        key = self._key(local, 7)
        local.put_feasible(key, True)
        remote_snapshot = {key: False}  # cannot happen in practice
        local.absorb(remote_snapshot)
        assert local.get_feasible(key) is True

    def test_absorb_does_not_touch_counters(self):
        cache = QueryCache()
        cache.absorb({self._key(cache, 3): True})
        assert cache.stats.queries == 0

    def test_snapshot_survives_pickling(self):
        cache = QueryCache()
        key = self._key(cache, 99)
        cache.put_feasible(key, True)
        revived = pickle.loads(pickle.dumps(cache.snapshot()))
        other = QueryCache()
        assert other.absorb(revived) == 1
        assert other.get_feasible(self._key(other, 99)) is True


class TestTransportInterface:
    def test_base_class_is_abstract_enough(self):
        transport = Transport()
        with pytest.raises(NotImplementedError):
            transport.start(1, None)
        with pytest.raises(NotImplementedError):
            transport.recv(0.1)
        assert transport.describe(3) == "worker 3"

    def test_respawn_defaults_to_unsupported(self):
        """A transport that can't replace workers says so by returning
        False — the scheduler then spreads work over the survivors."""
        assert Transport().respawn(0) is False


def tiny_setup(engine):
    def program(ctx):
        ctx.branch(ctx.fresh_bool("b"))
    return program, None


class TestLocalTransportLifecycle:
    def test_start_assign_recv_stop(self):
        from repro.explore import WorkerSession
        from repro.explore.shard import MSG_DONE

        transport = LocalTransport()
        transport.start(1, WorkerSession(setup=tiny_setup,
                                         engine_config=EngineConfig()))
        try:
            assert transport.alive(0)
            assert "local worker 0" in transport.describe(0)
            transport.assign(0, [()])
            message = None
            for _ in range(500):
                message = transport.recv(0.05)
                if message is not None:
                    break
            assert message is not None
            kind, wid, outcome = message
            assert (kind, wid) == (MSG_DONE, 0)
            assert len(outcome.paths) == 2
        finally:
            transport.stop()

    def test_stop_is_idempotent(self):
        transport = LocalTransport()
        transport.stop()
        transport.stop()

    def test_respawn_replaces_a_dead_worker(self):
        """Terminate a worker process outright, respawn its slot, and
        the replacement serves a fresh assignment — while any stray
        message from the terminated predecessor is dropped (the slot
        indirection), never surfacing under the respawned wid."""
        from repro.explore import WorkerSession
        from repro.explore.shard import MSG_DONE

        transport = LocalTransport()
        transport.start(2, WorkerSession(setup=tiny_setup,
                                         engine_config=EngineConfig()))
        try:
            victim = transport._workers[transport._slot_of_wid[0]]
            victim.terminate()
            victim.join(timeout=10)
            for _ in range(200):
                if not transport.alive(0):
                    break
            assert not transport.alive(0)
            assert transport.alive(1)
            assert transport.respawn(0) is True
            assert transport.alive(0)
            transport.assign(0, [()])
            message = None
            for _ in range(500):
                message = transport.recv(0.05)
                if message is not None:
                    break
            assert message is not None
            kind, wid, outcome = message
            assert (kind, wid) == (MSG_DONE, 0)
            assert len(outcome.paths) == 2
        finally:
            transport.stop()
