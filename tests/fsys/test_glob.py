"""Tests for the FSP globbing dialect: *, ?, and — crucially — no escaping."""

from hypothesis import given, strategies as st

from repro.fsys.glob import expand, glob_match, has_wildcard

NAMES = st.text(st.characters(min_codepoint=33, max_codepoint=126), max_size=8)


class TestMatch:
    def test_literal(self):
        assert glob_match("file", "file")
        assert not glob_match("file", "files")

    def test_star_matches_empty(self):
        assert glob_match("file*", "file")

    def test_star_matches_suffix(self):
        assert glob_match("file*", "file123")

    def test_star_in_middle(self):
        assert glob_match("f*e", "fe")
        assert glob_match("f*e", "fire")
        assert not glob_match("f*e", "fir")

    def test_multiple_stars(self):
        assert glob_match("*a*b*", "xxaxybz")

    def test_consecutive_stars_collapse(self):
        assert glob_match("a**b", "ab")
        assert glob_match("a***b", "aXYZb")

    def test_question_matches_exactly_one(self):
        assert glob_match("fil?", "file")
        assert not glob_match("fil?", "fil")
        assert not glob_match("fil?", "filee")

    def test_no_escape_character(self):
        # This is the FSP bug's root cause: backslash is a literal char,
        # so 'file\*' matches 'file\' + anything, never literal 'file*'.
        assert not glob_match(r"file\*", "file*")
        assert glob_match(r"file\*", "file\\")
        assert glob_match(r"file\*", "file\\123")

    def test_star_pattern_matches_star_name(self):
        assert glob_match("file*", "file*")

    @given(name=NAMES)
    def test_lone_star_matches_everything(self, name):
        assert glob_match("*", name)

    @given(name=NAMES)
    def test_name_matches_itself_when_wildcard_free(self, name):
        if not has_wildcard(name):
            assert glob_match(name, name)


class TestExpand:
    FILES = ["file1", "file2", "file3", "other"]

    def test_expands_matches_sorted(self):
        assert expand("file*", self.FILES) == ["file1", "file2", "file3"]

    def test_no_match_expands_to_pattern_itself(self):
        # Shell convention; the client then sends the literal pattern.
        assert expand("zzz*", self.FILES) == ["zzz*"]

    def test_literal_name_expands_to_itself_when_present(self):
        assert expand("other", self.FILES) == ["other"]

    def test_star_name_in_directory_is_matched_by_star_patterns(self):
        # Once 'file*' exists, 'rm file*' hits it AND its siblings: the
        # impact scenario from §6.3.
        files = ["file*", "file1", "fileWithAllMyBankAccounts"]
        assert expand("file*", files) == files
