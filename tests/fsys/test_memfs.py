"""Tests for the in-memory filesystem."""

import pytest

from repro.errors import FileSystemError
from repro.fsys.memfs import MemFS


@pytest.fixture
def fs() -> MemFS:
    memfs = MemFS()
    memfs.mkdir("/home")
    memfs.write_file("/home/a.txt", b"alpha")
    memfs.write_file("/home/b.txt", b"beta")
    return memfs


class TestFiles:
    def test_write_and_read(self, fs):
        assert fs.read_file("/home/a.txt") == b"alpha"

    def test_overwrite(self, fs):
        fs.write_file("/home/a.txt", b"new")
        assert fs.read_file("/home/a.txt") == b"new"

    def test_write_into_missing_dir_rejected(self, fs):
        with pytest.raises(FileSystemError):
            fs.write_file("/nope/x", b"")

    def test_read_missing_rejected(self, fs):
        with pytest.raises(FileSystemError):
            fs.read_file("/home/zzz")

    def test_read_directory_rejected(self, fs):
        with pytest.raises(FileSystemError):
            fs.read_file("/home")

    def test_star_is_a_legal_filename_character(self, fs):
        fs.write_file("/home/file*", b"trojan")
        assert fs.is_file("/home/file*")
        assert fs.read_file("/home/file*") == b"trojan"


class TestDeleteRename:
    def test_delete_file(self, fs):
        fs.delete("/home/a.txt")
        assert not fs.exists("/home/a.txt")

    def test_delete_missing_rejected(self, fs):
        with pytest.raises(FileSystemError):
            fs.delete("/home/zzz")

    def test_delete_nonempty_dir_rejected(self, fs):
        with pytest.raises(FileSystemError):
            fs.delete("/home")

    def test_rename_moves_content(self, fs):
        fs.rename("/home/a.txt", "/home/c.txt")
        assert not fs.exists("/home/a.txt")
        assert fs.read_file("/home/c.txt") == b"alpha"

    def test_rename_overwrites_target_file(self, fs):
        fs.rename("/home/a.txt", "/home/b.txt")
        assert fs.read_file("/home/b.txt") == b"alpha"

    def test_rename_missing_rejected(self, fs):
        with pytest.raises(FileSystemError):
            fs.rename("/home/zzz", "/home/x")


class TestDirsAndGlob:
    def test_listdir_sorted(self, fs):
        assert fs.listdir("/home") == ["a.txt", "b.txt"]

    def test_listdir_root(self, fs):
        assert fs.listdir("/") == ["home"]

    def test_mkdir_existing_rejected(self, fs):
        with pytest.raises(FileSystemError):
            fs.mkdir("/home")

    def test_glob_in_directory(self, fs):
        fs.write_file("/home/a.log", b"")
        assert fs.glob("/home", "a.*") == ["a.log", "a.txt"]

    def test_tree_snapshot(self, fs):
        assert fs.tree() == {
            "/home": None,
            "/home/a.txt": b"alpha",
            "/home/b.txt": b"beta",
        }

    def test_populate_round_trip(self, fs):
        clone = MemFS()
        clone.populate(fs.tree())
        assert clone.tree() == fs.tree()
