"""Stateful property test: MemFS against a flat dict model."""

from hypothesis import given, settings, strategies as st

from repro.errors import FileSystemError
from repro.fsys.memfs import MemFS

NAMES = st.sampled_from(["a", "b", "c", "d"])
OPS = st.lists(
    st.one_of(
        st.tuples(st.just("write"), NAMES, st.binary(max_size=4)),
        st.tuples(st.just("delete"), NAMES, st.none()),
        st.tuples(st.just("rename"), NAMES, NAMES),
    ),
    max_size=30)


@settings(max_examples=100, deadline=None)
@given(operations=OPS)
def test_memfs_matches_dict_model(operations):
    """Apply the same operation stream to MemFS and a dict; both must
    agree on contents and on which operations fail."""
    fs = MemFS()
    fs.mkdir("/d")
    model: dict[str, bytes] = {}

    for op, name, extra in operations:
        if op == "write":
            fs.write_file(f"/d/{name}", extra)
            model[name] = extra
        elif op == "delete":
            fs_failed = model_failed = False
            try:
                fs.delete(f"/d/{name}")
            except FileSystemError:
                fs_failed = True
            if name in model:
                del model[name]
            else:
                model_failed = True
            assert fs_failed == model_failed
        elif op == "rename":
            fs_failed = model_failed = False
            try:
                fs.rename(f"/d/{name}", f"/d/{extra}")
            except FileSystemError:
                fs_failed = True
            if name in model:
                content = model.pop(name)
                model[extra] = content
            else:
                model_failed = True
            assert fs_failed == model_failed

        assert fs.listdir("/d") == sorted(model)
        for entry, content in model.items():
            assert fs.read_file(f"/d/{entry}") == content
