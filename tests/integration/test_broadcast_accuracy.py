"""End-to-end Achilles on the Bracha reliable-broadcast workload.

The acceptance bar for the broadcast system: all 7 seeded Trojan
classes found (recall 1.0), nothing benign flagged (precision 1.0),
and every witness a genuine member of ``PS \\ PC`` under the
independent concrete oracles.
"""

import pytest

from repro.bench.experiments import run_broadcast_accuracy
from repro.systems import broadcast


@pytest.fixture(scope="module")
def broadcast_outcome():
    return run_broadcast_accuracy()


class TestBroadcastAccuracy:
    def test_perfect_precision_and_recall(self, broadcast_outcome):
        assert broadcast_outcome.true_positives == 7
        assert broadcast_outcome.false_positives == 0
        assert broadcast_outcome.classes_found == 7
        assert broadcast_outcome.classes_total == 7
        assert broadcast_outcome.precision == 1.0
        assert broadcast_outcome.recall == 1.0

    def test_every_witness_is_accepted_and_ungenerable(
            self, broadcast_outcome):
        for witness in broadcast_outcome.report.witnesses():
            assert broadcast.is_node_accepted(witness)
            assert not broadcast.is_peer_generable(witness)

    def test_both_seeded_bugs_are_represented(self, broadcast_outcome):
        kinds = {broadcast.classify_message(w).kind
                 for w in broadcast_outcome.report.witnesses()}
        assert kinds == {broadcast.FORGED_SENDER, broadcast.THIN_QUORUM}

    def test_thin_certificates_carry_the_label(self, broadcast_outcome):
        # The READY switch labels every below-quorum certificate at the
        # moment it slips past the off-by-one; forged SENDs do not.
        for finding in broadcast_outcome.report.findings:
            trojan = broadcast.classify_message(finding.witness)
            assert (("thin-certificate" in finding.labels)
                    == (trojan.kind == broadcast.THIN_QUORUM))

    def test_benign_accepting_paths_yield_no_findings(
            self, broadcast_outcome):
        # The ECHO path and the 5 full-certificate READY paths accept
        # only generable messages: the search must prune them all.
        assert broadcast_outcome.report.server_paths_pruned >= 6
