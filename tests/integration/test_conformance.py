"""Differential conformance suite: every solver layer is one oracle.

The pipeline's fast paths — canonicalization, the shared
:class:`QueryCache`, the :class:`IncrementalSolver` frame stack, and
:class:`SolverService` dispatch (serial and pooled) — are each pinned
against from-scratch :meth:`Solver.check` pairwise elsewhere. This suite
is the N-way version: hypothesis generates random small protocol layouts
plus constraint sets over their fields, and every layer must return the
same answer (and a genuinely satisfying model) for

* from-scratch ``Solver().check`` at every prefix depth,
* ``IncrementalSolver`` at every push depth, including after pops,
* ``QueryCache``-fronted ``Engine.is_feasible`` calls (miss, replay hit,
  and the canonically-equal reordered variant),
* an engine fronted by an *absorbed* cache snapshot
  (``QueryCache.snapshot()`` → ``absorb()``), which must answer every
  prefix depth identically — and entirely from cache hits,
* ``SolverService.check_batch`` / ``probe_batch`` /
  ``iter_models_batch`` on the serial backend and on a worker pool,
* the async ``submit_*`` twins of each batch surface, which must agree
  with their blocking counterparts element for element.

The hypothesis profile is derandomized (fixed seed) with the deadline
disabled, so the suite is reproducible on 1-core CI runners; CI runs it
as its own job step.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.messages.layout import Field, MessageLayout
from repro.messages.symbolic import field_expr, message_vars
from repro.solver import ast
from repro.solver.ast import bv_const
from repro.solver.cache import QueryCache
from repro.solver.evalmodel import all_hold
from repro.solver.incremental import IncrementalSolver
from repro.solver.service import SolverService
from repro.solver.solver import Solver
from repro.symex.engine import Engine

settings.register_profile(
    "conformance",
    deadline=None,             # solver calls dwarf the default 200ms budget
    derandomize=True,          # fixed seed: reproducible on any runner
    max_examples=25,
    suppress_health_check=[HealthCheck.too_slow],
)
CONFORMANCE = settings.get_profile("conformance")

_COMPARISONS = ("eq", "ne", "ult", "ule", "slt", "sle")
_ARITH = ("add", "sub", "bvand", "bvor", "bvxor")


@st.composite
def layouts(draw):
    """A random small protocol layout: 2-4 fields of 1-2 bytes."""
    widths = draw(st.lists(st.sampled_from([1, 2]), min_size=2, max_size=4))
    return MessageLayout("conf", [
        Field(f"f{i}", width) for i, width in enumerate(widths)])


def _field_term(layout, wire, spec):
    """One arithmetic term over a drawn field of the layout."""
    arith, field_index, constant = spec
    view = layout.fields[field_index % len(layout.fields)]
    expr = field_expr(wire, layout.view(view.name))
    op = _ARITH[arith % len(_ARITH)]
    return getattr(ast, op)(expr, bv_const(constant & ((1 << expr.width) - 1),
                                           expr.width))


def _constraint(layout, wire, spec):
    comparison, negate, term_spec, constant = spec
    term = _field_term(layout, wire, term_spec)
    rhs = bv_const(constant & ((1 << term.width) - 1), term.width)
    pred = getattr(ast, _COMPARISONS[comparison % len(_COMPARISONS)])(term, rhs)
    return ast.not_(pred) if negate else pred


CONSTRAINT_SPEC = st.tuples(
    st.integers(0, 5), st.booleans(),
    st.tuples(st.integers(0, 4), st.integers(0, 3), st.integers(0, 0xFFFF)),
    st.integers(0, 0xFFFF))


@st.composite
def workloads(draw):
    """A layout plus a constraint conjunction over its fields."""
    layout = draw(layouts())
    wire = message_vars(layout, "conf_msg")
    specs = draw(st.lists(CONSTRAINT_SPEC, min_size=1, max_size=4))
    return layout, [_constraint(layout, wire, spec) for spec in specs]


def _reference_answers(constraints):
    """From-scratch `Solver.check` at every prefix depth — the oracle."""
    return [Solver().check(constraints[:depth + 1])
            for depth in range(len(constraints))]


@CONFORMANCE
@given(workload=workloads())
def test_incremental_agrees_at_every_push_depth(workload):
    _, constraints = workload
    reference = _reference_answers(constraints)
    incremental = IncrementalSolver()
    for depth, conjunct in enumerate(constraints):
        incremental.push(conjunct)
        result = incremental.check_current()
        assert result.is_sat == reference[depth].is_sat, f"depth {depth}"
        if result.is_sat:
            assert all_hold(constraints[:depth + 1], dict(result.model))
    # Pop back to half depth: the trail must restore the exact fixpoint.
    half = len(constraints) // 2
    while incremental.depth > half:
        incremental.pop()
    if half:
        result = incremental.check_current()
        assert result.is_sat == reference[half - 1].is_sat


@CONFORMANCE
@given(workload=workloads())
def test_query_cache_fronted_engine_agrees(workload):
    _, constraints = workload
    reference = Solver().check(constraints)
    cache = QueryCache()
    engine = Engine(query_cache=cache)
    query = tuple(constraints)
    assert engine.is_feasible(query) == reference.is_sat
    # Replay: the identical query must be answered from the cache.
    hits_before = cache.stats.hits
    assert engine.is_feasible(query) == reference.is_sat
    assert cache.stats.hits == hits_before + 1
    # A canonically-equal variant (reordered conjuncts) hits the same
    # entry even on a *fresh* engine sharing the cache.
    variant = tuple(reversed(constraints))
    hits_before = cache.stats.hits
    assert Engine(query_cache=cache).is_feasible(variant) == reference.is_sat
    assert cache.stats.hits == hits_before + 1


@CONFORMANCE
@given(workload=workloads())
def test_absorbed_snapshot_fronted_engine_agrees(workload):
    """The snapshot/absorb leg of the oracle: answers served out of an
    *absorbed* cache snapshot must agree with from-scratch at every
    prefix depth.

    A source engine warms a cache at every prefix of the workload, the
    snapshot crosses into a fresh cache via ``absorb``, and a fresh
    engine fronted by the absorbed cache must (a) answer every prefix
    identically to the scratch reference and (b) answer them all as
    cache *hits* — the engine records every prefix feasibility it
    decides, so the snapshot covers them."""
    _, constraints = workload
    reference = _reference_answers(constraints)
    prefixes = [tuple(constraints[:depth + 1])
                for depth in range(len(constraints))]
    source_cache = QueryCache()
    source_engine = Engine(query_cache=source_cache)
    for prefix, expected in zip(prefixes, reference):
        assert source_engine.is_feasible(prefix) == expected.is_sat
    snapshot = source_cache.snapshot()
    absorbed = QueryCache()
    assert absorbed.absorb(snapshot) == len(snapshot)
    assert absorbed.absorb(snapshot) == 0  # idempotent: local wins
    fronted = Engine(query_cache=absorbed)
    for depth, (prefix, expected) in enumerate(zip(prefixes, reference)):
        hits_before = absorbed.stats.hits
        assert fronted.is_feasible(prefix) == expected.is_sat, \
            f"depth {depth}"
        assert absorbed.stats.hits == hits_before + 1, \
            f"depth {depth} missed the absorbed snapshot"
    # Canonical equality crosses the snapshot boundary too: reordered
    # conjuncts still hit the absorbed entries.
    variant = tuple(reversed(constraints))
    hits_before = absorbed.stats.hits
    assert Engine(query_cache=absorbed).is_feasible(variant) == \
        reference[-1].is_sat
    assert absorbed.stats.hits == hits_before + 1


@CONFORMANCE
@given(workload=workloads())
def test_serial_service_agrees_with_scratch(workload):
    _, constraints = workload
    reference = _reference_answers(constraints)
    prefixes = [tuple(constraints[:depth + 1])
                for depth in range(len(constraints))]
    with SolverService(workers=1) as service:
        results = service.check_batch(prefixes)
        assert [r.is_sat for r in results] == \
            [r.is_sat for r in reference]
        for prefix, result in zip(prefixes, results):
            if result.is_sat:
                assert all_hold(prefix, dict(result.model))
        # The push/pop probe surface must agree too, including on the
        # negated final conjunct.
        probes = [(constraints[-1],), (ast.not_(constraints[-1]),)]
        probed = service.probe_batch(tuple(constraints[:-1]), probes)
        assert probed[0] == reference[-1].is_sat
        assert probed[1] == Solver().is_satisfiable(
            list(constraints[:-1]) + [ast.not_(constraints[-1])])


def _battery():
    """A deterministic battery of workloads for the pooled backend.

    Pool startup is too expensive to pay per hypothesis example, so the
    worker-pool leg of the oracle runs once over a fixed sweep built
    from the same constraint grammar.
    """
    layout = MessageLayout("conf", [Field("f0", 1), Field("f1", 2)])
    wire = message_vars(layout, "conf_msg")
    queries = []
    for comparison in range(len(_COMPARISONS)):
        for negate in (False, True):
            for arith in range(len(_ARITH)):
                spec = (comparison, negate,
                        (arith, arith % 2, 0x1234 + 17 * comparison),
                        (59 * arith + 11 * comparison) & 0xFFFF)
                anchor = _constraint(layout, wire, (0, False,
                                                    (0, 0, 7), 7 + negate))
                queries.append((anchor, _constraint(layout, wire, spec)))
    return queries


def test_worker_pool_agrees_with_scratch():
    queries = _battery()
    reference = [Solver().check(query) for query in queries]
    with SolverService(workers=2) as service:
        results = service.check_batch(queries)
    assert [r.is_sat for r in results] == [r.is_sat for r in reference]
    for query, result in zip(queries, results):
        if result.is_sat:
            assert all_hold(query, dict(result.model))


def _model_battery():
    """Fixed ``(constraints, variables)`` enumeration spaces.

    Kept deliberately narrow (single-byte fields, tight bounds) so model
    counts stay small; one unsat space pins the empty-list answer.
    """
    layout = MessageLayout("conf", [Field("f0", 1), Field("f1", 1)])
    wire = message_vars(layout, "conf_msg")
    f0 = field_expr(wire, layout.view("f0"))
    f1 = field_expr(wire, layout.view("f1"))
    specs = []
    for bound in (1, 3, 6):
        specs.append(((ast.ult(f0, bv_const(bound, 8)),), (f0,)))
        specs.append(((ast.ult(f0, bv_const(bound, 8)),
                       ast.eq(f1, bv_const(7, 8))), (f0, f1)))
    specs.append(((ast.eq(f0, bv_const(9, 8)),
                   ast.ult(f0, bv_const(2, 8))), (f0,)))  # unsat: no models
    return specs


def test_iter_models_batch_agrees_with_direct_enumeration():
    """The batched enumeration surface folds into the N-way oracle: the
    serial service and a worker pool must both reproduce the direct
    ``iter_models`` answer, order included (chunking-invariance)."""
    from repro.solver.enumerate import iter_models

    specs = _model_battery()
    reference = [list(iter_models(constraints, variables))
                 for constraints, variables in specs]
    assert any(reference) and [] in reference  # sat and unsat both present
    with SolverService(workers=1) as serial:
        assert serial.iter_models_batch(specs) == reference
    with SolverService(workers=2) as pooled:
        assert pooled.iter_models_batch(specs) == reference


def test_async_submissions_agree_with_blocking_calls():
    """submit_check/probe/iter_models must return exactly what their
    blocking twins return — on the pooled backend, where the answers
    genuinely travel through worker processes."""
    queries = _battery()
    prefix = queries[0][:1]
    probes = [query[1:] for query in queries]
    model_specs = _model_battery()
    with SolverService(workers=2) as service:
        blocking_checks = service.check_batch(queries)
        blocking_probes = service.probe_batch(prefix, probes)
        blocking_models = service.iter_models_batch(model_specs)
        # Submit all three before collecting any: results must land by
        # submission identity, not completion order.
        check_future = service.submit_check_batch(queries)
        probe_future = service.submit_probe_batch(prefix, probes)
        models_future = service.submit_iter_models_batch(model_specs)
        async_checks = check_future.result()
        assert probe_future.result() == blocking_probes
        assert models_future.result() == blocking_models
    assert [r.is_sat for r in async_checks] == \
        [r.is_sat for r in blocking_checks]
    assert [r.model for r in async_checks] == \
        [r.model for r in blocking_checks]


def test_async_submissions_serial_fallback_agrees():
    """The serial service completes submissions eagerly; the contract
    (same answers as blocking) must hold there too."""
    queries = _battery()[:6]
    model_specs = _model_battery()
    with SolverService(workers=1) as service:
        assert [r.is_sat for r in service.submit_check_batch(queries).result()] \
            == [r.is_sat for r in service.check_batch(queries)]
        assert service.submit_iter_models_batch(model_specs).result() \
            == service.iter_models_batch(model_specs)


def test_all_layers_one_oracle():
    """The N-way cross-check on one battery: every layer, same answers.

    This is the suite's summary property — scratch, incremental (at
    every depth), cache-fronted engine, and the serial service answer
    one fixed battery identically. (The pooled leg is pinned against
    the same scratch reference above.)
    """
    queries = _battery()
    with SolverService(workers=1) as service:
        batched = service.check_batch(queries)
        for query, from_service in zip(queries, batched):
            scratch = Solver().check(query)
            incremental = IncrementalSolver()
            prefix_answers = []
            for conjunct in query:
                incremental.push(conjunct)
                prefix_answers.append(incremental.check_current().is_sat)
            engine = Engine(query_cache=QueryCache())
            answers = {
                "scratch": scratch.is_sat,
                "incremental": prefix_answers[-1],
                "engine+cache": engine.is_feasible(tuple(query)),
                "service": from_service.is_sat,
            }
            assert len(set(answers.values())) == 1, answers
            # Prefix monotonicity: once UNSAT, deeper stays UNSAT.
            for shallow, deep in zip(prefix_answers, prefix_answers[1:]):
                assert shallow or not deep
