"""Chaos suite: injected worker loss must never change what Achilles finds.

The headline robustness criterion, end to end: the FSP and Raft analyses
run under a scripted :class:`FaultPlan` — one worker killed before it
delivers anything, its first respawn attempt refused — with
``on_worker_loss="recover"``, on both transports, at shards = 2 and 4;
the findings must be byte-identical to a fault-free serial run, and the
report must prove the faults actually fired (``worker_failures``,
``prefixes_reassigned``) rather than silently missing the injection.

This is the suite the CI chaos job runs. Like the parity suite,
``REPRO_TCP_HOSTS`` can aim the TCP runs at externally launched daemons;
otherwise two private localhost daemons are spawned per module. Two
hosts also exercise the respawn ring: the killed session's replacement
connects to the *next* listed host.
"""

import itertools
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.achilles import Achilles, AchillesConfig
from repro.bench.experiments import FSP_SESSION_MASK
from repro.explore import (
    FaultPlan,
    FaultyTransport,
    KillWorker,
    LocalTransport,
    RefuseRespawn,
)
from repro.explore.tcp import TcpTransport
from repro.systems import broadcast, fsp, raft

SHARD_COUNTS = (2, 4)

_REPO_ROOT = Path(__file__).resolve().parents[2]


def _chaos_plan():
    """One worker dead before its first result; its first respawn
    attempt refused (inside the default max_worker_retries=2 budget)."""
    return FaultPlan(KillWorker(0, after_results=0),
                     RefuseRespawn(0, times=1))


def _spawn_daemons(count: int):
    env = dict(os.environ)
    path_entries = [str(_REPO_ROOT / "src")]
    if env.get("PYTHONPATH"):
        path_entries.append(env["PYTHONPATH"])
    env["PYTHONPATH"] = os.pathsep.join(path_entries)
    daemons, hosts = [], []
    for _ in range(count):
        daemon = subprocess.Popen(
            [sys.executable, "-m", "repro", "worker",
             "--listen", "127.0.0.1:0"],
            env=env, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
            text=True)
        daemons.append(daemon)
        line = daemon.stdout.readline().strip()
        ready, host, port = line.split()
        assert ready == "READY", f"unexpected daemon banner: {line!r}"
        hosts.append(f"{host}:{port}")
    return daemons, tuple(hosts)


@pytest.fixture(scope="module")
def tcp_hosts():
    configured = os.environ.get("REPRO_TCP_HOSTS", "").strip()
    if configured:
        yield tuple(h.strip() for h in configured.split(",") if h.strip())
        return
    daemons, hosts = _spawn_daemons(2)
    try:
        yield hosts
    finally:
        for daemon in daemons:
            daemon.terminate()
        for daemon in daemons:
            try:
                daemon.wait(timeout=10)
            except subprocess.TimeoutExpired:  # pragma: no cover
                daemon.kill()
                daemon.wait()


def _finding_signature(report):
    return [
        (f.server_path_id, f.decisions, f.path_condition, f.negation,
         f.witness, f.live_predicates, f.labels)
        for f in report.findings
    ]


def _run_fsp(shards, transport="local", on_worker_loss="fail"):
    commands = dict(itertools.islice(fsp.COMMANDS.items(), 4))
    config = AchillesConfig(layout=fsp.FSP_LAYOUT, mask=FSP_SESSION_MASK,
                            shards=shards, transport=transport,
                            on_worker_loss=on_worker_loss)
    with Achilles(config) as achilles:
        predicates = achilles.extract_clients(fsp.literal_clients(commands))
        return achilles.search(fsp.fsp_server, predicates)


def _run_raft(shards, transport="local", on_worker_loss="fail"):
    config = AchillesConfig(layout=raft.RAFT_LAYOUT, destination="follower",
                            shards=shards, transport=transport,
                            on_worker_loss=on_worker_loss)
    with Achilles(config) as achilles:
        predicates = achilles.extract_clients(raft.peer_clients())
        return achilles.search(raft.raft_follower, predicates)


def _run_broadcast(shards, transport="local", on_worker_loss="fail"):
    config = AchillesConfig(layout=broadcast.BROADCAST_LAYOUT,
                            destination="node", shards=shards,
                            transport=transport,
                            on_worker_loss=on_worker_loss)
    with Achilles(config) as achilles:
        predicates = achilles.extract_clients(broadcast.peer_clients())
        return achilles.search(broadcast.broadcast_node, predicates)


_RUNNERS = {"broadcast": _run_broadcast, "fsp": _run_fsp,
            "raft": _run_raft}

#: Systems whose path trees outlive the seed phase at shards=2, so the
#: kill plan is guaranteed a worker to hit. The broadcast tree is small
#: enough to finish at seed time — its chaos runs assert parity (and
#: clean counters) above, but cannot assert the injection fired.
_FANS_OUT = ("fsp", "raft")


@pytest.fixture(scope="module")
def baselines():
    """Fault-free serial signature per system."""
    return {name: _finding_signature(run(1)) for name, run in _RUNNERS.items()}


def _assert_parity(report, faulty, baseline, label):
    """Findings must match the fault-free serial baseline; the recovery
    accounting must be consistent with whether the kill actually fired
    (a tree small enough to finish at seed time never spawns workers, so
    there is nothing to kill — parity is still required)."""
    assert baseline, f"{label}: serial run found nothing"
    assert _finding_signature(report) == baseline, (
        f"{label}: findings diverged under injected worker loss")
    if faulty.injected_kills:
        assert report.worker_failures >= 1
        assert report.prefixes_reassigned >= 1
    else:
        assert report.worker_failures == 0
        assert report.prefixes_reassigned == 0


class TestChaosParityLocal:
    @pytest.mark.parametrize("system", sorted(_RUNNERS))
    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    def test_findings_survive_injected_worker_loss(self, system, shards,
                                                   baselines):
        faulty = FaultyTransport(LocalTransport(), _chaos_plan())
        report = _RUNNERS[system](shards, transport=faulty,
                                  on_worker_loss="recover")
        _assert_parity(report, faulty, baselines[system],
                       f"{system} local shards={shards}")

    @pytest.mark.parametrize("system", _FANS_OUT)
    def test_injection_fires_at_two_shards(self, system, baselines):
        """Teeth check: at shards=2 every system fans out, so the plan
        must actually fire — a chaos run whose faults never triggered
        proves nothing."""
        faulty = FaultyTransport(LocalTransport(), _chaos_plan())
        report = _RUNNERS[system](2, transport=faulty,
                                  on_worker_loss="recover")
        assert faulty.injected_kills == 1
        assert faulty.refused_respawns == 1
        assert report.worker_failures == 1
        _assert_parity(report, faulty, baselines[system],
                       f"{system} local shards=2")


class TestChaosParityTcp:
    @pytest.mark.parametrize("system", sorted(_RUNNERS))
    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    def test_findings_survive_injected_worker_loss(self, system, shards,
                                                   tcp_hosts, baselines):
        faulty = FaultyTransport(TcpTransport(tcp_hosts), _chaos_plan())
        report = _RUNNERS[system](shards, transport=faulty,
                                  on_worker_loss="recover")
        _assert_parity(report, faulty, baselines[system],
                       f"{system} tcp shards={shards}")

    @pytest.mark.parametrize("system", _FANS_OUT)
    def test_injection_fires_at_two_shards(self, system, tcp_hosts,
                                           baselines):
        faulty = FaultyTransport(TcpTransport(tcp_hosts), _chaos_plan())
        report = _RUNNERS[system](2, transport=faulty,
                                  on_worker_loss="recover")
        assert faulty.injected_kills == 1
        assert faulty.refused_respawns == 1
        assert report.worker_failures == 1
        _assert_parity(report, faulty, baselines[system],
                       f"{system} tcp shards=2")


class TestRecoveryCountersSurface:
    def test_report_counts_the_recovery(self):
        """AchillesReport carries the fault accounting: how many workers
        died, how much work moved, what the wall-clock overhead was."""
        faulty = FaultyTransport(LocalTransport(), _chaos_plan())
        report = _run_fsp(2, transport=faulty, on_worker_loss="recover")
        assert report.worker_failures == 1
        assert report.prefixes_reassigned >= 1
        assert report.recovery_seconds > 0.0

    def test_fault_free_run_reports_clean_counters(self):
        report = _run_fsp(2, on_worker_loss="recover")
        assert report.worker_failures == 0
        assert report.prefixes_reassigned == 0
        assert report.recovery_seconds == 0.0
