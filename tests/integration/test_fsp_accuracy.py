"""End-to-end Achilles on FSP — the §6.2 accuracy experiment.

Ground truth: at path bound 5 there are exactly 80 Trojan classes
(``(1+2+3+4) × 8 utilities``). Achilles must find all of them with no
false positives (Table 1, Achilles column).
"""

import pytest

from repro.achilles import Achilles, AchillesConfig, FieldMask
from repro.systems.fsp import (
    FSP_LAYOUT,
    GroundTruth,
    all_trojan_classes,
    classify_message,
    fsp_server,
    globbing_clients,
    is_client_generable,
    is_server_accepted,
    literal_clients,
)

SESSION_MASK = FieldMask.hide("sum", "bb_key", "bb_seq", "bb_pos")


@pytest.fixture(scope="module")
def accuracy_run():
    achilles = Achilles(AchillesConfig(layout=FSP_LAYOUT, mask=SESSION_MASK))
    predicates = achilles.extract_clients(literal_clients())
    report = achilles.search(fsp_server, predicates)
    return predicates, report


class TestClientPredicate:
    def test_thirty_two_predicates(self, accuracy_run):
        # 8 utilities x 4 true path lengths.
        predicates, _ = accuracy_run
        assert len(predicates) == 32

    def test_bb_len_concrete_per_predicate(self, accuracy_run):
        predicates, _ = accuracy_run
        lengths = sorted({p.field_value("bb_len").value
                          for p in predicates.predicates})
        assert lengths == [1, 2, 3, 4]


class TestTable1AchillesColumn:
    def test_eighty_findings(self, accuracy_run):
        _, report = accuracy_run
        assert report.trojan_count == 80

    def test_all_classes_covered_no_false_positives(self, accuracy_run):
        _, report = accuracy_run
        score = GroundTruth.score(report.witnesses())
        assert score.true_positives == 80
        assert score.false_positives == 0
        assert len(score.classes_found) == len(all_trojan_classes())

    def test_every_witness_is_accepted_and_ungenerable(self, accuracy_run):
        _, report = accuracy_run
        for witness in report.witnesses():
            assert is_server_accepted(witness)
            assert not is_client_generable(witness)

    def test_valid_paths_pruned(self, accuracy_run):
        # 8 utilities x 4 lengths of valid (t == L) accepting paths have
        # no Trojans: the incremental search prunes them (§3.2).
        _, report = accuracy_run
        assert report.server_paths_pruned >= 32

    def test_discovery_is_incremental(self, accuracy_run):
        """Figure 10's defining property: findings arrive over the whole
        analysis, not in one burst at the end."""
        _, report = accuracy_run
        timeline = report.discovery_fractions()
        assert timeline[0][0] < 0.5, "first Trojan well before the end"
        assert timeline[-1][1] == 1.0

    def test_predicate_count_decays_along_paths(self, accuracy_run):
        """Figure 11's shape: deeper server paths retain fewer live
        client predicates."""
        _, report = accuracy_run
        samples = report.predicate_samples
        shallow = [n for length, n in samples if length <= 2]
        deep = [n for length, n in samples if length >= 10]
        assert shallow and deep
        assert max(deep) < max(shallow)
        assert min(deep) < 32  # deep paths retain a strict subset


class TestWildcardExperiment:
    """§6.3: with globbing clients, wildcard paths become Trojans."""

    @pytest.fixture(scope="class")
    def glob_run(self):
        achilles = Achilles(AchillesConfig(layout=FSP_LAYOUT,
                                           mask=SESSION_MASK))
        listing = ["f1", "f2", "doc"]
        predicates = achilles.extract_clients(globbing_clients(listing))
        report = achilles.search(fsp_server, predicates)
        return report

    def test_wildcard_trojans_found(self, glob_run):
        """Some witness must now carry a wildcard character: the only
        printable bytes globbing clients cannot emit."""
        buf_view = FSP_LAYOUT.view("buf")
        wildcard_witnesses = [
            w for w in glob_run.witnesses()
            if any(b in (ord("*"), ord("?"))
                   for b in w[buf_view.offset:buf_view.end])]
        assert wildcard_witnesses

    def test_more_findings_than_accuracy_run(self, glob_run):
        # Valid (t == L) paths now also accept Trojans (the wildcard
        # ones), so every accepting path yields a finding.
        assert glob_run.trojan_count > 80

    def test_no_witness_is_generable_by_globbing_clients(self, glob_run):
        for witness in glob_run.witnesses():
            assert not is_client_generable(witness, allow_wildcards=False)
