"""Parallel-parity: worker count must never change what Achilles finds.

The solver service's contract is that ``workers`` is a pure throughput
knob — the FSP and PBFT end-to-end analyses must produce *identical*
findings (same order, same witnesses, same live-predicate sets) at any
worker count. These tests pin that for workers = 1, 2 and 4 on both
evaluation systems.
"""

import pytest

from repro.achilles import Achilles, AchillesConfig
from repro.achilles.server_analysis import a_posteriori_search
from repro.bench.experiments import FSP_SESSION_MASK
from repro.messages.symbolic import message_vars
from repro.solver.service import SolverService
from repro.systems import fsp
from repro.systems.pbft import REQUEST_LAYOUT, pbft_client, pbft_replica

WORKER_COUNTS = (1, 2, 4)


def _finding_signature(report):
    """Everything observable about the findings, in discovery order."""
    return [
        (f.server_path_id, f.decisions, f.path_condition, f.negation,
         f.witness, f.live_predicates, f.labels)
        for f in report.findings
    ]


def _run_fsp(workers: int):
    import itertools

    commands = dict(itertools.islice(fsp.COMMANDS.items(), 4))
    config = AchillesConfig(layout=fsp.FSP_LAYOUT, mask=FSP_SESSION_MASK,
                            workers=workers)
    with Achilles(config) as achilles:
        predicates = achilles.extract_clients(fsp.literal_clients(commands))
        report = achilles.search(fsp.fsp_server, predicates)
    return predicates, report


def _run_pbft(workers: int):
    config = AchillesConfig(layout=REQUEST_LAYOUT, destination="replica0",
                            workers=workers)
    with Achilles(config) as achilles:
        predicates = achilles.extract_clients({"pbft-client": pbft_client})
        report = achilles.search(pbft_replica, predicates)
    return predicates, report


@pytest.fixture(scope="module")
def fsp_runs():
    return {workers: _run_fsp(workers) for workers in WORKER_COUNTS}


@pytest.fixture(scope="module")
def pbft_runs():
    return {workers: _run_pbft(workers) for workers in WORKER_COUNTS}


class TestFspParity:
    def test_findings_identical_at_every_worker_count(self, fsp_runs):
        baseline = _finding_signature(fsp_runs[1][1])
        assert baseline  # the serial run must actually find Trojans
        for workers in WORKER_COUNTS[1:]:
            assert _finding_signature(fsp_runs[workers][1]) == baseline, (
                f"workers={workers} diverged from serial")

    def test_different_from_matrix_identical(self, fsp_runs):
        baseline = fsp_runs[1][0].different_from._table
        for workers in WORKER_COUNTS[1:]:
            assert fsp_runs[workers][0].different_from._table == baseline

    def test_negations_identical(self, fsp_runs):
        baseline = [n.disjuncts for n in fsp_runs[1][0].negations]
        for workers in WORKER_COUNTS[1:]:
            assert [n.disjuncts
                    for n in fsp_runs[workers][0].negations] == baseline

    def test_report_records_worker_count(self, fsp_runs):
        for workers in WORKER_COUNTS:
            assert fsp_runs[workers][1].workers == workers


class TestAPosterioriParity:
    """The explore-first baseline batches its per-path Trojan probes;
    its witnesses must also be chunking- and worker-count-invariant."""

    @pytest.fixture(scope="class")
    def runs(self, fsp_runs):
        predicates = fsp_runs[1][0]
        server_msg = message_vars(fsp.FSP_LAYOUT)
        reports = {}
        for workers in WORKER_COUNTS:
            with SolverService(workers=workers) as service:
                reports[workers] = a_posteriori_search(
                    fsp.fsp_server, predicates, server_msg, service=service)
        return reports

    def test_findings_identical_at_every_worker_count(self, runs):
        baseline = _finding_signature(runs[1])
        assert baseline
        for workers in WORKER_COUNTS[1:]:
            assert _finding_signature(runs[workers]) == baseline, (
                f"workers={workers} diverged from serial")


class TestPbftParity:
    def test_findings_identical_at_every_worker_count(self, pbft_runs):
        baseline = _finding_signature(pbft_runs[1][1])
        assert len(baseline) == 2  # read-only reply + pre-prepare paths
        for workers in WORKER_COUNTS[1:]:
            assert _finding_signature(pbft_runs[workers][1]) == baseline, (
                f"workers={workers} diverged from serial")

    def test_witnesses_stay_trojan(self, pbft_runs):
        from repro.messages.concrete import decode
        from repro.systems.pbft import MAC_STUB

        for workers in WORKER_COUNTS:
            for finding in pbft_runs[workers][1].findings:
                mac = decode(REQUEST_LAYOUT, finding.witness)["mac"]
                assert mac != MAC_STUB
