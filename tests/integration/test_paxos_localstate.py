"""The three local-state modes on the Paxos acceptor (§3.4)."""

import pytest

from repro.achilles import Achilles, AchillesConfig
from repro.achilles.localstate import capture_sent_message
from repro.errors import AchillesError
from repro.systems.paxos import (
    ACCEPT,
    PAXOS_LAYOUT,
    PREPARE,
    acceptor_program,
    overapprox_acceptor,
    phase2_proposer,
    symbolic_value_proposer,
)


def _achilles() -> Achilles:
    return Achilles(AchillesConfig(layout=PAXOS_LAYOUT,
                                   destination="acceptor"))


class TestConcreteLocalState:
    """The paper's scenario: acceptor promised ballot 3, proposer holds
    the promise and proposes value 7 — any other message is Trojan."""

    @pytest.fixture(scope="class")
    def run(self):
        achilles = _achilles()
        predicates = achilles.extract_clients(
            {"proposer": phase2_proposer(ballot=3, value=7)})
        report = achilles.search(acceptor_program(promised=3), predicates)
        return report

    def test_both_accepting_paths_have_trojans(self, run):
        labels = {label for f in run.findings for label in f.labels}
        assert labels == {"promise", "accepted"}

    def test_accept_trojan_deviates_from_the_proposal(self, run):
        accepted = next(f for f in run.findings if "accepted" in f.labels)
        fields = accepted.witness_fields(PAXOS_LAYOUT)
        assert fields["kind"] == ACCEPT
        assert fields["ballot"] >= 3
        # The witness must differ from the one correct message
        # ACCEPT(3, 7) in ballot or value.
        assert (fields["ballot"], fields["value"]) != (3, 7)

    def test_prepare_trojan_outbids_the_promise(self, run):
        promise = next(f for f in run.findings if "promise" in f.labels)
        fields = promise.witness_fields(PAXOS_LAYOUT)
        assert fields["kind"] == PREPARE
        assert fields["ballot"] > 3


class TestConstructedSymbolicLocalState:
    """With a symbolic proposed value, value-based 'Trojans' vanish:
    some correct proposer could send any value (§3.4)."""

    def test_value_trojans_eliminated(self):
        achilles = _achilles()
        predicates = achilles.extract_clients(
            {"proposer": symbolic_value_proposer(ballot=3)})
        report = achilles.search(acceptor_program(promised=3), predicates)
        accepted = [f for f in report.findings if "accepted" in f.labels]
        for finding in accepted:
            fields = finding.witness_fields(PAXOS_LAYOUT)
            # The only remaining ACCEPT Trojan dimension is the ballot.
            assert fields["ballot"] != 3

    def test_capture_sent_message_returns_payload_and_constraints(self):
        payload, constraints = capture_sent_message(
            symbolic_value_proposer(ballot=3), destination="acceptor")
        assert len(payload) == PAXOS_LAYOUT.total_size
        assert isinstance(constraints, tuple)

    def test_capture_rejects_out_of_range_path(self):
        with pytest.raises(AchillesError):
            capture_sent_message(symbolic_value_proposer(3),
                                 destination="acceptor", path_index=99)


class TestOverApproximateLocalState:
    """One run with symbolic promised ballot covers all promise states."""

    def test_finds_trojans_across_all_states(self):
        achilles = _achilles()
        predicates = achilles.extract_clients(
            {"proposer": phase2_proposer(ballot=3, value=7)})
        report = achilles.search(overapprox_acceptor(max_promise=10),
                                 predicates)
        assert report.trojan_count >= 2
        labels = {label for f in report.findings for label in f.labels}
        assert "accepted" in labels
