"""End-to-end Achilles on PBFT — rediscovering the MAC attack (§6.2-§6.3)."""

import pytest

from repro.achilles import Achilles, AchillesConfig
from repro.messages.concrete import decode
from repro.systems.pbft import (
    KNOWN_CLIENTS,
    MAC_STUB,
    OD_STUB,
    REQUEST_LAYOUT,
    REQUEST_TAG,
    pbft_client,
    pbft_replica,
)


@pytest.fixture(scope="module")
def run():
    achilles = Achilles(AchillesConfig(layout=REQUEST_LAYOUT,
                                       destination="replica0"))
    predicates = achilles.extract_clients({"pbft-client": pbft_client})
    report = achilles.search(pbft_replica, predicates)
    return predicates, report


class TestClientPredicate:
    def test_single_client_path(self, run):
        predicates, _ = run
        assert len(predicates) == 1

    def test_symbolic_fields_abandoned_in_negation(self, run):
        # extra/replier/cid/rid/command are unconstrained symbolic: the
        # negate operator cannot complement them (§3.2).
        predicates, _ = run
        fields = {d.field for d in predicates.negations[0].disjuncts}
        assert fields == {"tag", "size", "od", "command_size", "mac"}


class TestMacAttackRediscovery:
    def test_trojan_on_every_accepting_path(self, run):
        """§6.2: 'The Trojan message discovered by Achilles appears on
        all execution paths in the server.'"""
        _, report = run
        assert report.trojan_count == 2  # read-only and pre-prepare paths
        labels = {label for f in report.findings for label in f.labels}
        assert labels == {"read-only-reply", "pre-prepare"}

    def test_witness_has_corrupt_mac(self, run):
        _, report = run
        for finding in report.findings:
            mac = decode(REQUEST_LAYOUT, finding.witness)["mac"]
            assert mac != MAC_STUB

    def test_witness_passes_every_other_check(self, run):
        _, report = run
        for finding in report.findings:
            fields = decode(REQUEST_LAYOUT, finding.witness)
            assert int.from_bytes(fields["tag"], "big") == REQUEST_TAG
            assert fields["od"] == OD_STUB
            assert int.from_bytes(fields["cid"], "big") in KNOWN_CLIENTS

    def test_analysis_is_fast(self, run):
        """The paper: 'Achilles completed the PBFT analysis in just a
        few seconds' — few checks on client requests."""
        _, report = run
        assert report.timings.server_analysis < 30.0
