"""End-to-end Achilles on the Raft and two-phase-commit workloads.

The executable form of the acceptance bar for the new systems: every
seeded Trojan class is found (recall 1.0), nothing benign is flagged
(precision 1.0), and the witnesses are genuine members of ``PS \\ PC``
under the independent concrete oracles.
"""

import pytest

from repro.bench.experiments import run_raft_accuracy, run_tpc_accuracy
from repro.systems import raft, tpc


@pytest.fixture(scope="module")
def raft_outcome():
    return run_raft_accuracy()


@pytest.fixture(scope="module")
def tpc_outcome():
    return run_tpc_accuracy()


class TestRaftAccuracy:
    def test_perfect_precision_and_recall(self, raft_outcome):
        assert raft_outcome.true_positives == 9
        assert raft_outcome.false_positives == 0
        assert raft_outcome.classes_found == raft_outcome.classes_total == 9
        assert raft_outcome.precision == 1.0
        assert raft_outcome.recall == 1.0

    def test_every_witness_is_accepted_and_ungenerable(self, raft_outcome):
        for witness in raft_outcome.report.witnesses():
            assert raft.is_follower_accepted(witness)
            assert not raft.is_peer_generable(witness)

    def test_both_seeded_bugs_are_represented(self, raft_outcome):
        kinds = {raft.classify_message(w).kind
                 for w in raft_outcome.report.witnesses()}
        assert kinds == {raft.STALE_APPEND, raft.VOTE_OFF_BY_ONE}

    def test_committed_truncation_labelled(self, raft_outcome):
        # The stale appends probing below the commit point carry the
        # label the follower program records at the truncate step.
        for finding in raft_outcome.report.findings:
            trojan = raft.classify_message(finding.witness)
            assert (("truncates-committed" in finding.labels)
                    == trojan.truncates_committed)

    def test_benign_accepting_paths_yield_no_findings(self, raft_outcome):
        # Current-term appends (4 paths) + the up-to-date vote grant:
        # all accepting, none Trojan — the search must prune them all.
        assert raft_outcome.report.server_paths_pruned >= 5


class TestTpcAccuracy:
    def test_perfect_precision_and_recall(self, tpc_outcome):
        assert tpc_outcome.true_positives == 2
        assert tpc_outcome.false_positives == 0
        assert tpc_outcome.classes_found == tpc_outcome.classes_total == 2
        assert tpc_outcome.precision == 1.0
        assert tpc_outcome.recall == 1.0

    def test_every_witness_is_accepted_and_ungenerable(self, tpc_outcome):
        for witness in tpc_outcome.report.witnesses():
            assert tpc.is_participant_accepted(witness)
            assert not tpc.is_coordinator_generable(witness)

    def test_both_seeded_classes_found(self, tpc_outcome):
        kinds = {tpc.classify_message(w).kind
                 for w in tpc_outcome.report.witnesses()}
        assert kinds == {tpc.SKIP_WAL, tpc.EMPTY_OP}

    def test_skip_wal_witness_rides_the_unlogged_path(self, tpc_outcome):
        labels = {tpc.classify_message(f.witness).kind: f.labels
                  for f in tpc_outcome.report.findings}
        assert "prepare:ack-without-wal" in labels[tpc.SKIP_WAL]
        assert "prepare:logged" in labels[tpc.EMPTY_OP]
