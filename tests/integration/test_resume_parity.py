"""Crash-safe coordinator: kill/resume byte-parity on real systems.

``tests/explore/test_checkpoint.py`` pins the journal mechanics on toy
trees; this suite closes the acceptance criterion on the real analyses:
the coordinator is killed at *every* checkpoint boundary of an FSP
(reduced command set, as in the transport-parity suite) and a Raft hunt,
the run is resumed from the journal, and the findings — path ids,
witnesses, live-predicate sets, labels — plus the exploration and
sampling counters must be byte-identical to an uninterrupted run. Both
transports are covered: local ``multiprocessing`` workers and
``python -m repro worker`` daemons over TCP.

The kill is injected through the ``checkpoint_hook`` test seam of
:func:`search_server` (:class:`KillCoordinatorAt` fires *after* the
journal checkpoint is durable, exactly where a real crash is
survivable). Checkpoint counts are scheduling-dependent, so the loop
walks the kill target upward until a run completes before reaching it —
that run closes the loop, and the harness asserts at least one kill
actually fired along the way.
"""

import itertools
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.achilles import Achilles, AchillesConfig
from repro.achilles.server_analysis import search_server
from repro.bench.experiments import FSP_SESSION_MASK
from repro.explore import CoordinatorKilled, KillCoordinatorAt
from repro.systems import fsp, raft

_REPO_ROOT = Path(__file__).resolve().parents[2]


def _spawn_daemons(count: int):
    """Start ``count`` worker daemons on ephemeral ports; return
    (processes, hosts) once every daemon has printed its READY line."""
    env = dict(os.environ)
    path_entries = [str(_REPO_ROOT / "src")]
    if env.get("PYTHONPATH"):
        path_entries.append(env["PYTHONPATH"])
    env["PYTHONPATH"] = os.pathsep.join(path_entries)
    daemons, hosts = [], []
    for _ in range(count):
        daemon = subprocess.Popen(
            [sys.executable, "-m", "repro", "worker",
             "--listen", "127.0.0.1:0"],
            env=env, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
            text=True)
        daemons.append(daemon)
        line = daemon.stdout.readline().strip()
        ready, host, port = line.split()
        assert ready == "READY", f"unexpected daemon banner: {line!r}"
        hosts.append(f"{host}:{port}")
    return daemons, tuple(hosts)


@pytest.fixture(scope="module")
def tcp_hosts():
    daemons, hosts = _spawn_daemons(2)
    try:
        yield hosts
    finally:
        for daemon in daemons:
            daemon.terminate()
        for daemon in daemons:
            try:
                daemon.wait(timeout=10)
            except subprocess.TimeoutExpired:  # pragma: no cover
                daemon.kill()
                daemon.wait()


def _finding_signature(report):
    """Everything observable about the findings, in discovery order."""
    return [
        (f.server_path_id, f.decisions, f.path_condition, f.negation,
         f.witness, f.live_predicates, f.labels)
        for f in report.findings
    ]


_SYSTEMS = {
    "fsp": dict(
        config=dict(layout=fsp.FSP_LAYOUT, mask=FSP_SESSION_MASK),
        clients=lambda: fsp.literal_clients(
            dict(itertools.islice(fsp.COMMANDS.items(), 4))),
        server=fsp.fsp_server),
    "raft": dict(
        config=dict(layout=raft.RAFT_LAYOUT, destination="follower"),
        clients=raft.peer_clients,
        server=raft.raft_follower),
}


def _search(system, run_dir, *, resume=False, hook=None, hosts=None):
    """One full pipeline run, phase 2 journaled under ``run_dir``.

    ``run_dir=None`` runs unjournaled (the uninterrupted baseline)."""
    spec = _SYSTEMS[system]
    transport = ({} if hosts is None
                 else {"transport": "tcp", "hosts": tuple(hosts)})
    config = AchillesConfig(shards=2, **spec["config"], **transport)
    with Achilles(config) as achilles:
        predicates = achilles.extract_clients(spec["clients"]())
        report, _ = search_server(
            spec["server"], predicates, achilles.server_msg,
            config.server_engine, config.optimizations, config.msg_name,
            query_cache=achilles.query_cache, service=achilles.service,
            shards=config.shards, transport=config.transport,
            hosts=config.hosts,
            run_dir=None if run_dir is None else str(run_dir),
            checkpoint_interval=1, resume=resume, checkpoint_hook=hook)
        return report


@pytest.fixture(scope="module")
def baselines():
    """Uninterrupted (local, unjournaled) report per system."""
    reports = {name: _search(name, None) for name in _SYSTEMS}
    for name, report in reports.items():
        assert report.findings, f"{name}: baseline run found nothing"
    return reports


def _assert_parity(report, baseline, context):
    assert _finding_signature(report) == _finding_signature(baseline), (
        f"findings diverged {context}")
    assert report.server_paths_explored == baseline.server_paths_explored
    assert report.server_paths_pruned == baseline.server_paths_pruned
    assert report.predicate_samples == baseline.predicate_samples


def _kill_at_every_checkpoint(system, baseline, tmp_path, hosts=None):
    """Walk the kill target across every checkpoint boundary."""
    kills_fired = 0
    target = 1
    while True:
        run_dir = tmp_path / f"{system}-kill-{target}"
        try:
            report = _search(system, run_dir,
                             hook=KillCoordinatorAt(target), hosts=hosts)
        except CoordinatorKilled:
            kills_fired += 1
            report = _search(system, run_dir, resume=True, hosts=hosts)
            assert report.resumed_regions >= 0
            completed = False
        else:
            completed = True
        _assert_parity(report, baseline, f"for {system} killed@{target}")
        if completed:
            break
        target += 1
    assert kills_fired >= 1, f"{system}: no kill ever fired"


class TestLocalResumeParity:
    @pytest.mark.parametrize("system", sorted(_SYSTEMS))
    def test_kill_at_every_checkpoint(self, system, baselines, tmp_path):
        _kill_at_every_checkpoint(system, baselines[system], tmp_path)

    def test_uninterrupted_journaled_run_matches(self, baselines, tmp_path):
        """Journaling alone (no kill, no resume) must not perturb the
        analysis."""
        report = _search("fsp", tmp_path / "run")
        _assert_parity(report, baselines["fsp"], "for journaled fsp")
        assert report.checkpoints_written >= 1
        assert report.resumed_regions == 0


class TestTcpResumeParity:
    @pytest.mark.parametrize("system", sorted(_SYSTEMS))
    def test_kill_at_every_checkpoint(self, system, baselines, tmp_path,
                                      tcp_hosts):
        _kill_at_every_checkpoint(system, baselines[system], tmp_path,
                                  hosts=tcp_hosts)
