"""Shard-parity: exploration shard count must never change what Achilles finds.

Mirror of ``test_parallel_parity.py`` for the sharded exploration layer:
the FSP, PBFT, Raft and two-phase-commit end-to-end analyses must
produce *identical* findings (same order, same path ids, same witnesses,
same live-predicate sets) at shards = 1, 2 and 4 — shards=1 being the
plain in-process walk, so this also pins the sharded pipeline against
the classic serial engine. The canonical ordering is the same pinned
prefix order for every system.
"""

import itertools

import pytest

from repro.achilles import Achilles, AchillesConfig
from repro.bench.experiments import FSP_SESSION_MASK
from repro.systems import broadcast, fsp, raft, tpc
from repro.systems.pbft import REQUEST_LAYOUT, pbft_client, pbft_replica

SHARD_COUNTS = (1, 2, 4)


def _finding_signature(report):
    """Everything observable about the findings, in discovery order."""
    return [
        (f.server_path_id, f.decisions, f.path_condition, f.negation,
         f.witness, f.live_predicates, f.labels)
        for f in report.findings
    ]


def _run_fsp(shards: int, workers: int = 1):
    commands = dict(itertools.islice(fsp.COMMANDS.items(), 4))
    config = AchillesConfig(layout=fsp.FSP_LAYOUT, mask=FSP_SESSION_MASK,
                            workers=workers, shards=shards)
    with Achilles(config) as achilles:
        predicates = achilles.extract_clients(fsp.literal_clients(commands))
        report = achilles.search(fsp.fsp_server, predicates)
    return report


def _run_pbft(shards: int):
    config = AchillesConfig(layout=REQUEST_LAYOUT, destination="replica0",
                            shards=shards)
    with Achilles(config) as achilles:
        predicates = achilles.extract_clients({"pbft-client": pbft_client})
        report = achilles.search(pbft_replica, predicates)
    return report


def _run_raft(shards: int, workers: int = 1):
    config = AchillesConfig(layout=raft.RAFT_LAYOUT, destination="follower",
                            workers=workers, shards=shards)
    with Achilles(config) as achilles:
        predicates = achilles.extract_clients(raft.peer_clients())
        report = achilles.search(raft.raft_follower, predicates)
    return report


def _run_tpc(shards: int, workers: int = 1):
    config = AchillesConfig(layout=tpc.TPC_LAYOUT, destination="participant",
                            workers=workers, shards=shards)
    with Achilles(config) as achilles:
        predicates = achilles.extract_clients(tpc.coordinator_clients())
        report = achilles.search(tpc.tpc_participant, predicates)
    return report


def _run_broadcast(shards: int, workers: int = 1):
    config = AchillesConfig(layout=broadcast.BROADCAST_LAYOUT,
                            destination="node",
                            workers=workers, shards=shards)
    with Achilles(config) as achilles:
        predicates = achilles.extract_clients(broadcast.peer_clients())
        report = achilles.search(broadcast.broadcast_node, predicates)
    return report


@pytest.fixture(scope="module")
def fsp_runs():
    return {shards: _run_fsp(shards) for shards in SHARD_COUNTS}


@pytest.fixture(scope="module")
def pbft_runs():
    return {shards: _run_pbft(shards) for shards in SHARD_COUNTS}


class TestFspShardParity:
    def test_findings_identical_at_every_shard_count(self, fsp_runs):
        baseline = _finding_signature(fsp_runs[1])
        assert baseline  # the serial run must actually find Trojans
        for shards in SHARD_COUNTS[1:]:
            assert _finding_signature(fsp_runs[shards]) == baseline, (
                f"shards={shards} diverged from serial")

    def test_exploration_counters_identical(self, fsp_runs):
        baseline = fsp_runs[1]
        for shards in SHARD_COUNTS[1:]:
            report = fsp_runs[shards]
            assert report.server_paths_explored == \
                baseline.server_paths_explored
            assert report.server_paths_pruned == baseline.server_paths_pruned
            assert report.predicate_samples == baseline.predicate_samples

    def test_report_records_shard_count(self, fsp_runs):
        for shards in SHARD_COUNTS:
            assert fsp_runs[shards].shards == shards

    def test_shards_compose_with_workers(self):
        """Sharded exploration plus a parallel solver service for the
        pre-processing batches: still byte-identical findings."""
        baseline = _finding_signature(_run_fsp(1))
        combined = _run_fsp(2, workers=2)
        assert _finding_signature(combined) == baseline


@pytest.fixture(scope="module")
def raft_runs():
    return {shards: _run_raft(shards) for shards in SHARD_COUNTS}


@pytest.fixture(scope="module")
def tpc_runs():
    return {shards: _run_tpc(shards) for shards in SHARD_COUNTS}


class TestRaftShardParity:
    def test_findings_identical_at_every_shard_count(self, raft_runs):
        baseline = _finding_signature(raft_runs[1])
        assert len(baseline) == 9  # 8 stale appends + the off-by-one vote
        for shards in SHARD_COUNTS[1:]:
            assert _finding_signature(raft_runs[shards]) == baseline, (
                f"shards={shards} diverged from serial")

    def test_exploration_counters_identical(self, raft_runs):
        baseline = raft_runs[1]
        for shards in SHARD_COUNTS[1:]:
            report = raft_runs[shards]
            assert report.server_paths_explored == \
                baseline.server_paths_explored
            assert report.server_paths_pruned == baseline.server_paths_pruned

    def test_witnesses_stay_trojan(self, raft_runs):
        for shards in SHARD_COUNTS:
            for finding in raft_runs[shards].findings:
                assert raft.classify_message(finding.witness) is not None

    def test_shards_compose_with_workers(self):
        baseline = _finding_signature(_run_raft(1))
        combined = _run_raft(2, workers=2)
        assert _finding_signature(combined) == baseline


class TestTpcShardParity:
    def test_findings_identical_at_every_shard_count(self, tpc_runs):
        baseline = _finding_signature(tpc_runs[1])
        assert len(baseline) == 2  # ack-without-wal + empty-op prepare
        for shards in SHARD_COUNTS[1:]:
            assert _finding_signature(tpc_runs[shards]) == baseline, (
                f"shards={shards} diverged from serial")

    def test_witnesses_stay_trojan(self, tpc_runs):
        for shards in SHARD_COUNTS:
            for finding in tpc_runs[shards].findings:
                assert tpc.classify_message(finding.witness) is not None

    def test_shards_compose_with_workers(self):
        baseline = _finding_signature(_run_tpc(1))
        combined = _run_tpc(2, workers=2)
        assert _finding_signature(combined) == baseline


@pytest.fixture(scope="module")
def broadcast_runs():
    return {shards: _run_broadcast(shards) for shards in SHARD_COUNTS}


class TestBroadcastShardParity:
    def test_findings_identical_at_every_shard_count(self, broadcast_runs):
        baseline = _finding_signature(broadcast_runs[1])
        assert len(baseline) == 7  # forged sender + 6 thin certificates
        for shards in SHARD_COUNTS[1:]:
            assert _finding_signature(broadcast_runs[shards]) == baseline, (
                f"shards={shards} diverged from serial")

    def test_exploration_counters_identical(self, broadcast_runs):
        baseline = broadcast_runs[1]
        for shards in SHARD_COUNTS[1:]:
            report = broadcast_runs[shards]
            assert report.server_paths_explored == \
                baseline.server_paths_explored
            assert report.server_paths_pruned == baseline.server_paths_pruned

    def test_witnesses_stay_trojan(self, broadcast_runs):
        for shards in SHARD_COUNTS:
            for finding in broadcast_runs[shards].findings:
                assert broadcast.classify_message(finding.witness) \
                    is not None

    def test_shards_compose_with_workers(self):
        baseline = _finding_signature(_run_broadcast(1))
        combined = _run_broadcast(2, workers=2)
        assert _finding_signature(combined) == baseline


class TestPbftShardParity:
    def test_findings_identical_at_every_shard_count(self, pbft_runs):
        baseline = _finding_signature(pbft_runs[1])
        assert len(baseline) == 2  # read-only reply + pre-prepare paths
        for shards in SHARD_COUNTS[1:]:
            assert _finding_signature(pbft_runs[shards]) == baseline, (
                f"shards={shards} diverged from serial")

    def test_witnesses_stay_trojan(self, pbft_runs):
        from repro.messages.concrete import decode
        from repro.systems.pbft import MAC_STUB

        for shards in SHARD_COUNTS:
            for finding in pbft_runs[shards].findings:
                mac = decode(REQUEST_LAYOUT, finding.witness)["mac"]
                assert mac != MAC_STUB
