"""End-to-end Achilles on the §2.1 working example.

This is the paper's running example: the READ path misses the
``address < 0`` check, so READ messages with negative addresses (or junk
in the unused value field) are Trojans; the WRITE path validates both
bounds and must be pruned without a finding.
"""

import pytest

from repro.achilles import Achilles, AchillesConfig, FieldMask, OptimizationFlags
from repro.net.inject import Injector
from repro.net.network import Network
from repro.solver import check
from repro.solver import ast
from repro.systems.toy import (
    DATASIZE,
    PEERS,
    READ,
    TOY_LAYOUT,
    ToyServerNode,
    WRITE,
    toy_checksum,
    toy_client,
)
from repro.systems.toy.protocol import CHECKSUM_SPAN
from repro.systems.toy.server import toy_server


@pytest.fixture(scope="module")
def run():
    achilles = Achilles(AchillesConfig(layout=TOY_LAYOUT))
    predicates = achilles.extract_clients({"toy": toy_client})
    report = achilles.search(toy_server, predicates)
    return predicates, report


def _signed32(value: int) -> int:
    return value - (1 << 32) if value >= (1 << 31) else value


class TestClientPredicate:
    def test_two_client_paths(self, run):
        predicates, _ = run
        # Figure 5: one READ path, one WRITE path.
        assert len(predicates) == 2

    def test_request_fields_are_concrete(self, run):
        predicates, _ = run
        kinds = sorted(p.field_value("request").value
                       for p in predicates.predicates)
        assert kinds == [READ, WRITE]

    def test_crc_negation_discarded_as_non_injective(self, run):
        # The additive checksum collides, so its negation overlaps the
        # original predicate and must be discarded (§4.1).
        predicates, _ = run
        for negation in predicates.negations:
            assert "crc" not in {d.field for d in negation.disjuncts}

    def test_sender_negation_abandoned_as_unconstrained(self, run):
        predicates, _ = run
        for negation in predicates.negations:
            assert "sender" not in {d.field for d in negation.disjuncts}


class TestTrojanDiscovery:
    def test_exactly_one_trojan_path(self, run):
        _, report = run
        assert report.trojan_count == 1

    def test_finding_is_on_the_read_path(self, run):
        _, report = run
        fields = report.findings[0].witness_fields(TOY_LAYOUT)
        assert fields["request"] == READ

    def test_write_path_produced_no_finding_and_was_pruned(self, run):
        _, report = run
        assert report.server_paths_pruned >= 1

    def test_witness_passes_all_server_checks(self, run):
        _, report = run
        witness = report.findings[0].witness
        fields = report.findings[0].witness_fields(TOY_LAYOUT)
        assert fields["sender"] in PEERS
        assert fields["crc"] == toy_checksum(list(witness[:CHECKSUM_SPAN]))
        assert _signed32(fields["address"]) < DATASIZE

    def test_witness_is_not_client_generable(self, run):
        # The Trojan witness must violate what correct clients guarantee:
        # either a negative address or junk in the READ value field.
        _, report = run
        fields = report.findings[0].witness_fields(TOY_LAYOUT)
        address = _signed32(fields["address"])
        assert address < 0 or address >= DATASIZE or fields["value"] != 0

    def test_witness_unsat_against_every_client_path(self, run):
        predicates, report = run
        witness = report.findings[0].witness
        achilles_msg = [ast.bv_var(f"msg[{i}]", 8) for i in range(len(witness))]
        pinned = [ast.eq(var, ast.bv_const(b, 8))
                  for var, b in zip(achilles_msg, witness)]
        for pred in predicates.predicates:
            query = list(pred.combined(tuple(achilles_msg))) + pinned
            assert not check(query).is_sat


class TestOptimizationEquivalence:
    def test_all_optimizations_off_finds_the_same_trojans(self):
        config = AchillesConfig(layout=TOY_LAYOUT,
                                optimizations=OptimizationFlags.all_off())
        achilles = Achilles(config)
        predicates = achilles.extract_clients({"toy": toy_client})
        report = achilles.search(toy_server, predicates)
        assert report.trojan_count == 1
        fields = report.findings[0].witness_fields(TOY_LAYOUT)
        assert fields["request"] == READ
        # Without pruning the WRITE path runs to acceptance but yields no
        # finding (its Trojan query is unsat).
        assert report.server_paths_pruned == 0

    def test_mask_restricts_findings_to_visible_fields(self):
        config = AchillesConfig(layout=TOY_LAYOUT,
                                mask=FieldMask.only(TOY_LAYOUT, "address"))
        achilles = Achilles(config)
        predicates = achilles.extract_clients({"toy": toy_client})
        report = achilles.search(toy_server, predicates)
        assert report.trojan_count == 1
        fields = report.findings[0].witness_fields(TOY_LAYOUT)
        # With only the address visible, the witness must be an
        # out-of-range address (value-field Trojans are hidden).
        assert _signed32(fields["address"]) < 0


class TestImpact:
    """Inject the discovered Trojan into a concrete deployment (§4.1)."""

    def test_trojan_leaks_peer_list(self, run):
        _, report = run
        network = Network()
        server = network.attach(ToyServerNode("server"))
        sink = _Sink("client")
        network.attach(sink)

        # Craft the specific leak: READ at address -1 reads the byte just
        # below the data array, i.e. the last configured peer.
        from repro.messages.concrete import encode
        body = {"sender": PEERS[0], "request": READ,
                "address": (1 << 32) - 1, "value": 0}
        partial = encode(TOY_LAYOUT, {**body, "crc": 0})
        message = encode(TOY_LAYOUT, {
            **body, "crc": toy_checksum(list(partial[:CHECKSUM_SPAN]))})

        injector = Injector(network, "server", spoof_source="client")
        outcome = injector.inject(message)
        assert outcome.delivered >= 1
        assert sink.received, "server accepted the Trojan and replied"
        leaked = sink.received[0][1][1]
        assert leaked == PEERS[-1]

    def test_correct_write_then_read_round_trip(self):
        # Sanity: the concrete server behaves for valid traffic.
        from repro.messages.concrete import encode
        network = Network()
        server = network.attach(ToyServerNode("server"))
        sink = _Sink("client")
        network.attach(sink)

        def send(request, address, value=0):
            body = {"sender": 1, "request": request, "address": address,
                    "value": value}
            partial = encode(TOY_LAYOUT, {**body, "crc": 0})
            crc = toy_checksum(list(partial[:CHECKSUM_SPAN]))
            network.send("client", "server", encode(TOY_LAYOUT,
                                                    {**body, "crc": crc}))
            network.run()

        send(WRITE, 5, value=42)
        send(READ, 5)
        assert sink.received[-1][1][1] == 42
        assert server.data[5] == 42


class _Sink:
    def __init__(self, name):
        self.name = name
        self.received = []

    def handle(self, source, payload, network):
        self.received.append((source, payload))

    def on_attach(self, network):
        pass
