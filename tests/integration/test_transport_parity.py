"""Transport parity: sockets must never change what Achilles finds.

The FSP, PBFT, Raft and two-phase-commit analyses must produce
*identical* findings (same order, same path ids, same witnesses, same
live-predicate sets) whether the shard workers are local
``multiprocessing`` processes or ``python -m repro worker`` daemons
reached over TCP — at shards = 1, 2 and 4. Combined with
``test_shard_parity.py`` (local transport across shard counts) this pins
the full matrix: any shard count, either transport, byte-identical
output.

By default the suite spawns two ephemeral-port daemons on localhost —
two daemons serving four shard sessions also exercises the round-robin
fork-per-session path. Set ``REPRO_TCP_HOSTS`` (comma-separated
``host:port`` list) to aim the parity runs at externally launched
daemons instead, which is how the CI job drives it.

The robustness tests (killed workers, remote tracebacks) always spawn
their own private daemons: their setup callables live in this module, so
the daemon needs the test directory on its ``PYTHONPATH`` to unpickle
them — true for daemons we spawn, not for external ones.
"""

import itertools
import os
import signal
import subprocess
import sys
from pathlib import Path

import pytest

from repro.achilles import Achilles, AchillesConfig
from repro.bench.experiments import FSP_SESSION_MASK
from repro.errors import SymexError
from repro.explore import ShardScheduler
from repro.systems import broadcast, fsp, raft, tpc
from repro.systems.pbft import REQUEST_LAYOUT, pbft_client, pbft_replica

SHARD_COUNTS = (1, 2, 4)

_REPO_ROOT = Path(__file__).resolve().parents[2]


def _spawn_daemons(count: int, extra_pythonpath: str | None = None):
    """Start ``count`` worker daemons on ephemeral ports; return
    (processes, hosts) once every daemon has printed its READY line."""
    env = dict(os.environ)
    path_entries = [str(_REPO_ROOT / "src")]
    if extra_pythonpath:
        path_entries.append(extra_pythonpath)
    if env.get("PYTHONPATH"):
        path_entries.append(env["PYTHONPATH"])
    env["PYTHONPATH"] = os.pathsep.join(path_entries)
    daemons, hosts = [], []
    for _ in range(count):
        daemon = subprocess.Popen(
            [sys.executable, "-m", "repro", "worker",
             "--listen", "127.0.0.1:0"],
            env=env, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
            text=True)
        daemons.append(daemon)
        line = daemon.stdout.readline().strip()
        ready, host, port = line.split()
        assert ready == "READY", f"unexpected daemon banner: {line!r}"
        hosts.append(f"{host}:{port}")
    return daemons, tuple(hosts)


def _stop_daemons(daemons):
    for daemon in daemons:
        daemon.terminate()
    for daemon in daemons:
        try:
            daemon.wait(timeout=10)
        except subprocess.TimeoutExpired:  # pragma: no cover - hung daemon
            daemon.kill()
            daemon.wait()


@pytest.fixture(scope="module")
def tcp_hosts():
    """Worker daemon addresses for the parity runs.

    ``REPRO_TCP_HOSTS`` points at externally launched daemons (the CI
    job); otherwise two private localhost daemons are spawned. Either
    way, 4-shard runs stress one-daemon-many-sessions round-robin.
    """
    configured = os.environ.get("REPRO_TCP_HOSTS", "").strip()
    if configured:
        yield tuple(h.strip() for h in configured.split(",") if h.strip())
        return
    daemons, hosts = _spawn_daemons(2)
    try:
        yield hosts
    finally:
        _stop_daemons(daemons)


def _finding_signature(report):
    """Everything observable about the findings, in discovery order."""
    return [
        (f.server_path_id, f.decisions, f.path_condition, f.negation,
         f.witness, f.live_predicates, f.labels)
        for f in report.findings
    ]


def _transport_kwargs(shards, hosts):
    if hosts is None:
        return {"shards": shards}
    return {"shards": shards, "transport": "tcp", "hosts": tuple(hosts)}


def _run_fsp(shards, hosts=None, trace_dir=None):
    commands = dict(itertools.islice(fsp.COMMANDS.items(), 4))
    config = AchillesConfig(layout=fsp.FSP_LAYOUT, mask=FSP_SESSION_MASK,
                            trace_dir=trace_dir,
                            **_transport_kwargs(shards, hosts))
    with Achilles(config) as achilles:
        predicates = achilles.extract_clients(fsp.literal_clients(commands))
        return achilles.search(fsp.fsp_server, predicates)


def _run_pbft(shards, hosts=None):
    config = AchillesConfig(layout=REQUEST_LAYOUT, destination="replica0",
                            **_transport_kwargs(shards, hosts))
    with Achilles(config) as achilles:
        predicates = achilles.extract_clients({"pbft-client": pbft_client})
        return achilles.search(pbft_replica, predicates)


def _run_raft(shards, hosts=None):
    config = AchillesConfig(layout=raft.RAFT_LAYOUT, destination="follower",
                            **_transport_kwargs(shards, hosts))
    with Achilles(config) as achilles:
        predicates = achilles.extract_clients(raft.peer_clients())
        return achilles.search(raft.raft_follower, predicates)


def _run_tpc(shards, hosts=None):
    config = AchillesConfig(layout=tpc.TPC_LAYOUT, destination="participant",
                            **_transport_kwargs(shards, hosts))
    with Achilles(config) as achilles:
        predicates = achilles.extract_clients(tpc.coordinator_clients())
        return achilles.search(tpc.tpc_participant, predicates)


def _run_broadcast(shards, hosts=None):
    config = AchillesConfig(layout=broadcast.BROADCAST_LAYOUT,
                            destination="node",
                            **_transport_kwargs(shards, hosts))
    with Achilles(config) as achilles:
        predicates = achilles.extract_clients(broadcast.peer_clients())
        return achilles.search(broadcast.broadcast_node, predicates)


_RUNNERS = {"broadcast": _run_broadcast, "fsp": _run_fsp,
            "pbft": _run_pbft, "raft": _run_raft, "tpc": _run_tpc}


@pytest.fixture(scope="module")
def local_baselines():
    """Serial (shards=1, local) signature per system. The local transport
    is already pinned byte-identical at shards=1,2,4 by
    ``test_shard_parity.py``, so equality against this baseline pins the
    TCP runs against every local shard count transitively."""
    return {name: _finding_signature(run(1)) for name, run in _RUNNERS.items()}


class TestTcpParity:
    @pytest.mark.parametrize("system", sorted(_RUNNERS))
    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    def test_findings_identical_over_tcp(self, system, shards,
                                         tcp_hosts, local_baselines):
        report = _RUNNERS[system](shards, hosts=tcp_hosts)
        assert local_baselines[system], f"{system}: serial run found nothing"
        assert _finding_signature(report) == local_baselines[system], (
            f"{system} diverged over tcp at shards={shards}")

    def test_counters_identical_over_tcp(self, tcp_hosts):
        """Exploration/pruning counters are part of the determinism
        contract too, not just the findings."""
        serial = _run_fsp(1)
        tcp = _run_fsp(4, hosts=tcp_hosts)
        assert tcp.server_paths_explored == serial.server_paths_explored
        assert tcp.server_paths_pruned == serial.server_paths_pruned
        assert tcp.predicate_samples == serial.predicate_samples


# -- tracing parity -----------------------------------------------------------


SOLVER_LAYERS = {"solver.canonicalize", "solver.cache",
                 "solver.incremental", "solver.scratch"}


def _assert_canonical_trace_order(records):
    """The merged trace's ordering invariant: one contiguous block per
    source — coordinator first, workers in ascending id order — with
    sequence numbers renumbered gaplessly inside each block. This is
    what makes the merge independent of real-time delta arrival."""
    body = [r for r in records if r["kind"] != "metrics"]
    blocks = []
    for record in body:
        if not blocks or blocks[-1] != record["src"]:
            blocks.append(record["src"])
    assert blocks[0] == "coordinator"
    workers = blocks[1:]
    assert workers == sorted(workers, key=lambda s: int(s.split("-")[1]))
    assert len(set(blocks)) == len(blocks), "source blocks not contiguous"
    for source in set(blocks):
        seqs = [r["seq"] for r in body if r["src"] == source]
        assert seqs == list(range(len(seqs)))


def _assert_trace_covers(records, shards):
    names = {r["name"] for r in records if r["kind"] in ("span", "agg")}
    assert SOLVER_LAYERS <= names, f"missing {SOLVER_LAYERS - names}"
    sources = {r["src"] for r in records}
    if shards == 1:
        assert "coordinator.explore" in names
    else:
        assert {"coordinator.seed", "coordinator.assign",
                "coordinator.merge", "worker.assignment"} <= names
        assert sources == {"coordinator"} | {
            f"worker-{w}" for w in range(shards)}
    assert records[-1]["kind"] == "metrics"  # the trailer survived


class TestTracingParity:
    """Tracing is observational: findings must stay byte-identical with
    it on, and the merged trace must cover every layer and obey the
    canonical source ordering — at any shard count, on both transports."""

    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    def test_traced_local_run_is_byte_identical(self, shards, tmp_path,
                                                local_baselines):
        from repro.obs.trace import read_trace

        report = _run_fsp(shards, trace_dir=str(tmp_path))
        assert _finding_signature(report) == local_baselines["fsp"], (
            f"tracing changed the findings at shards={shards}")
        trace = read_trace(tmp_path / "trace.jsonl")
        assert not trace.damaged
        _assert_trace_covers(trace.records, shards)
        _assert_canonical_trace_order(trace.records)

    def test_traced_tcp_run_is_byte_identical(self, tmp_path, tcp_hosts,
                                              local_baselines):
        from repro.obs.trace import read_trace

        report = _run_fsp(2, hosts=tcp_hosts, trace_dir=str(tmp_path))
        assert _finding_signature(report) == local_baselines["fsp"]
        trace = read_trace(tmp_path / "trace.jsonl")
        assert not trace.damaged
        _assert_trace_covers(trace.records, shards=2)
        _assert_canonical_trace_order(trace.records)

    def test_tracing_leaves_no_global_tracer_behind(self, tmp_path):
        from repro.obs import metrics as obs_metrics
        from repro.obs import trace as obs_trace

        _run_fsp(1, trace_dir=str(tmp_path))
        assert obs_trace.active is None
        assert obs_metrics.active is None


# -- robustness: these spawn private daemons (see module docstring) -----------


def dying_setup(engine, coordinator_pid):
    """Hard-kills the worker mid-run — no error frame possible, the
    coordinator only sees the socket go quiet."""
    def program(ctx):
        for i in range(4):
            ctx.branch(ctx.fresh_bool(f"b{i}"))
        if os.getpid() != coordinator_pid:
            os.kill(os.getpid(), signal.SIGKILL)
    return program, None


def failing_setup(engine, coordinator_pid):
    """Raises only inside remote workers, exercising the error frame."""
    def program(ctx):
        for i in range(4):
            ctx.branch(ctx.fresh_bool(f"b{i}"))
        if os.getpid() != coordinator_pid:
            raise RuntimeError("remote worker boom")
    return program, None


def die_once_setup(engine, coordinator_pid, marker):
    """SIGKILLs the first worker session to finish a path — exactly once
    across the whole run, via an O_EXCL marker file — so a recovery run
    sees one real daemon-session death and the respawned session (on the
    next listed host) completes the reclaimed work."""
    def program(ctx):
        for i in range(4):
            ctx.branch(ctx.fresh_bool(f"b{i}"))
        x = ctx.fresh_byte("x")
        ctx.branch(x < 100)
        if os.getpid() != coordinator_pid:
            try:
                fd = os.open(marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                return
            os.close(fd)
            os.kill(os.getpid(), signal.SIGKILL)
    return program, None


@pytest.fixture
def private_hosts():
    daemons, hosts = _spawn_daemons(
        2, extra_pythonpath=str(Path(__file__).resolve().parent))
    try:
        yield hosts
    finally:
        _stop_daemons(daemons)


class TestTcpRobustness:
    def test_killed_worker_fails_loudly_naming_assignment(self,
                                                          private_hosts):
        """SIGKILL on a TCP worker mid-assignment: the coordinator must
        detect the dropped connection and name the lost assignment, not
        hang waiting for a result frame that will never come."""
        scheduler = ShardScheduler(dying_setup, (os.getpid(),), shards=2,
                                   seed_factor=1, transport="tcp",
                                   hosts=private_hosts)
        with pytest.raises(SymexError) as excinfo:
            scheduler.run()
        message = str(excinfo.value)
        assert "died without reporting a result" in message
        assert "127.0.0.1:" in message            # which host
        assert "prefix(es)" in message            # the lost assignment

    def test_worker_exception_travels_back_as_traceback(self,
                                                        private_hosts):
        scheduler = ShardScheduler(failing_setup, (os.getpid(),), shards=2,
                                   seed_factor=1, transport="tcp",
                                   hosts=private_hosts)
        with pytest.raises(SymexError) as excinfo:
            scheduler.run()
        message = str(excinfo.value)
        assert "remote worker boom" in message
        assert "Traceback" in message             # the full remote trace

    def test_killed_worker_recovers_byte_identical_over_tcp(
            self, private_hosts, tmp_path):
        """SIGKILL on a TCP worker session mid-run, this time with
        ``on_worker_loss="recover"``: the coordinator reclaims the dead
        session's prefixes, respawns against the next host, and the
        merged result matches the serial engine path-for-path."""
        from repro.symex.engine import Engine, EngineConfig

        marker = str(tmp_path / "killed-once")
        args = (os.getpid(), marker)
        engine = Engine(EngineConfig())
        program, _ = die_once_setup(engine, *args)
        serial = engine.explore(program)
        scheduler = ShardScheduler(die_once_setup, args, shards=2,
                                   seed_factor=1, transport="tcp",
                                   hosts=private_hosts,
                                   on_worker_loss="recover")
        sharded = scheduler.run()
        assert os.path.exists(marker), "the kill never fired"
        assert sharded.worker_failures == 1
        assert sharded.prefixes_reassigned >= 1
        serial_paths = [(p.path_id, p.verdict, p.decisions, p.constraints)
                        for p in serial.paths]
        sharded_paths = [(p.path_id, p.verdict, p.decisions, p.constraints)
                         for p in sharded.exploration.paths]
        assert sharded_paths == serial_paths
        assert sharded.exploration.executed == serial.executed

    def test_plain_exploration_parity_over_tcp(self, private_hosts):
        """Scheduler-level (no Achilles) parity: a plain tree explored
        over TCP matches the local run path-for-path."""
        local = ShardScheduler(tree_setup, (4, [30, 200]), shards=2,
                               seed_factor=2).run()
        remote = ShardScheduler(tree_setup, (4, [30, 200]), shards=2,
                                seed_factor=2, transport="tcp",
                                hosts=private_hosts).run()
        local_paths = [(p.path_id, p.verdict, p.decisions, p.constraints)
                       for p in local.exploration.paths]
        remote_paths = [(p.path_id, p.verdict, p.decisions, p.constraints)
                        for p in remote.exploration.paths]
        assert remote_paths == local_paths
        assert remote.exploration.executed == local.exploration.executed


def tree_setup(engine, depth, thresholds=()):
    def program(ctx):
        for i in range(depth):
            ctx.branch(ctx.fresh_bool(f"b{i}"))
        x = ctx.fresh_byte("x")
        for threshold in thresholds:
            ctx.branch(x < threshold)
    return program, None
