"""SIGTERM drains the worker daemon instead of killing it.

A rolling restart of a worker fleet sends SIGTERM; if that dropped
in-flight sessions it would look exactly like a mid-assignment crash to
every coordinator. The drain contract: the listener closes immediately
(new coordinators get connection-refused and fail over to other hosts),
in-flight sessions run their assignments to completion and see the
coordinator's stop frame, and only then does the daemon exit — with
status 0, not -SIGTERM.

The test drives one session by hand over a raw socket so it can hold
the session open across the SIGTERM and observe both halves of the
contract on the same daemon.
"""

import os
import signal
import socket
import subprocess
import sys
import time
from pathlib import Path

from repro.explore.tcp import (
    MSG_HELLO,
    MSG_INIT,
    MSG_STOP,
    MSG_TASK,
    PROTOCOL_VERSION,
    FrameReader,
    send_frame,
)
from repro.explore.shard import MSG_DONE
from repro.explore.transport import WorkerSession
from repro.symex.engine import EngineConfig

_REPO_ROOT = Path(__file__).resolve().parents[2]


def drain_setup(engine):
    """Tiny two-path program; lives at module level so the daemon (which
    gets this directory on its PYTHONPATH) can unpickle it."""
    def program(ctx):
        ctx.branch(ctx.fresh_bool("b"))
    return program, None


def _spawn_daemon():
    env = dict(os.environ)
    entries = [str(_REPO_ROOT / "src"), str(Path(__file__).resolve().parent)]
    if env.get("PYTHONPATH"):
        entries.append(env["PYTHONPATH"])
    env["PYTHONPATH"] = os.pathsep.join(entries)
    daemon = subprocess.Popen(
        [sys.executable, "-m", "repro", "worker",
         "--listen", "127.0.0.1:0"],
        env=env, stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True)
    line = daemon.stdout.readline().strip()
    ready, host, port = line.split()
    assert ready == "READY", f"unexpected daemon banner: {line!r}"
    return daemon, host, int(port)


class TestSigtermDrain:
    def test_drain_finishes_in_flight_session_and_refuses_new_ones(self):
        daemon, host, port = _spawn_daemon()
        sock = None
        try:
            # Open a session and complete the handshake, so the daemon
            # has one in-flight session child when the SIGTERM lands.
            sock = socket.create_connection((host, port), timeout=10)
            reader = FrameReader(sock)
            frame = reader.recv_blocking(timeout=10)
            assert frame == (MSG_HELLO, PROTOCOL_VERSION)
            send_frame(sock, MSG_INIT,
                       WorkerSession(setup=drain_setup,
                                     engine_config=EngineConfig()))

            daemon.send_signal(signal.SIGTERM)

            # Half 1: the listener closes — new coordinators are refused.
            # (A connection that races the close is simply dropped; its
            # session child sees EOF and exits.)
            deadline = time.monotonic() + 10
            refused = False
            while time.monotonic() < deadline:
                try:
                    probe = socket.create_connection((host, port),
                                                     timeout=1.0)
                except OSError:
                    refused = True
                    break
                probe.close()
                time.sleep(0.05)
            assert refused, "listener still accepting after SIGTERM"

            # Half 2: the in-flight session still serves assignments.
            send_frame(sock, MSG_TASK, [()])
            frame = reader.recv_blocking(timeout=60)
            assert frame is not None, "drained session dropped mid-task"
            kind, outcome = frame
            assert kind == MSG_DONE
            assert len(outcome.paths) == 2

            # Session over: the daemon may now exit — cleanly.
            send_frame(sock, MSG_STOP, None)
            sock.close()
            sock = None
            assert daemon.wait(timeout=30) == 0, (
                "daemon did not exit 0 after draining")
        finally:
            if sock is not None:
                sock.close()
            if daemon.poll() is None:
                daemon.kill()
                daemon.wait()
