"""Tests for concrete encode/decode, including a hypothesis round-trip."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import MessageError
from repro.messages.concrete import decode, decode_ints, encode, pack_int, unpack_int
from repro.messages.layout import Field, MessageLayout

LAYOUT = MessageLayout("t", [Field("a", 1), Field("b", 2), Field("c", 3)])


class TestPackInt:
    def test_big_endian(self):
        assert pack_int(0x0102, 2) == b"\x01\x02"

    def test_round_trip(self):
        assert unpack_int(pack_int(123456, 4)) == 123456

    def test_overflow_rejected(self):
        with pytest.raises(MessageError):
            pack_int(256, 1)

    def test_negative_rejected(self):
        with pytest.raises(MessageError):
            pack_int(-1, 2)


class TestEncodeDecode:
    def test_int_fields(self):
        wire = encode(LAYOUT, {"a": 1, "b": 0x0203, "c": 0x040506})
        assert wire == b"\x01\x02\x03\x04\x05\x06"

    def test_bytes_fields(self):
        wire = encode(LAYOUT, {"a": 1, "b": b"xy", "c": [7, 8, 9]})
        assert wire == b"\x01xy\x07\x08\x09"

    def test_missing_field_rejected(self):
        with pytest.raises(MessageError, match="missing"):
            encode(LAYOUT, {"a": 1})

    def test_unknown_field_rejected(self):
        with pytest.raises(MessageError, match="unknown"):
            encode(LAYOUT, {"a": 1, "b": 2, "c": 3, "d": 4})

    def test_wrong_size_bytes_rejected(self):
        with pytest.raises(MessageError):
            encode(LAYOUT, {"a": 1, "b": b"toolong", "c": 0})

    def test_decode_splits_fields(self):
        parts = decode(LAYOUT, b"\x01\x02\x03\x04\x05\x06")
        assert parts == {"a": b"\x01", "b": b"\x02\x03", "c": b"\x04\x05\x06"}

    def test_decode_wrong_length_rejected(self):
        with pytest.raises(MessageError):
            decode(LAYOUT, b"\x01")

    @given(a=st.integers(0, 255), b=st.integers(0, 65535),
           c=st.integers(0, 2**24 - 1))
    def test_round_trip_property(self, a, b, c):
        fields = {"a": a, "b": b, "c": c}
        assert decode_ints(LAYOUT, encode(LAYOUT, fields)) == fields
