"""Unit tests for message layouts and field views."""

import pytest

from repro.errors import MessageError
from repro.messages.layout import VARIABLE, Field, FieldView, MessageLayout


def _layout() -> MessageLayout:
    return MessageLayout("cmd", [
        Field("cmd", 1), Field("sum", 1), Field("bb_len", 2), Field("buf", 4),
    ])


class TestLayoutShape:
    def test_total_size(self):
        assert _layout().total_size == 8

    def test_field_names_in_order(self):
        assert _layout().field_names == ("cmd", "sum", "bb_len", "buf")

    def test_view_offsets(self):
        layout = _layout()
        assert layout.view("cmd") == FieldView("cmd", 0, 1)
        assert layout.view("bb_len") == FieldView("bb_len", 2, 2)
        assert layout.view("buf") == FieldView("buf", 4, 4)

    def test_view_bit_width(self):
        assert _layout().view("bb_len").bit_width == 16

    def test_unknown_field_rejected(self):
        with pytest.raises(MessageError):
            _layout().view("nope")

    def test_empty_layout_rejected(self):
        with pytest.raises(MessageError):
            MessageLayout("empty", [])

    def test_duplicate_names_rejected(self):
        with pytest.raises(MessageError):
            MessageLayout("dup", [Field("a", 1), Field("a", 2)])

    def test_nonpositive_size_rejected(self):
        with pytest.raises(MessageError):
            Field("bad", 0)


class TestVariableTail:
    def test_tail_must_be_last(self):
        with pytest.raises(MessageError):
            MessageLayout("bad", [Field("buf", VARIABLE), Field("cmd", 1)])

    def test_total_size_requires_bind(self):
        layout = MessageLayout("var", [Field("cmd", 1), Field("buf", VARIABLE)])
        with pytest.raises(MessageError):
            _ = layout.total_size

    def test_bind_fixes_tail(self):
        layout = MessageLayout("var", [Field("cmd", 1), Field("buf", VARIABLE)])
        fixed = layout.bind(5)
        assert fixed.total_size == 6
        assert fixed.view("buf") == FieldView("buf", 1, 5)

    def test_bind_without_tail_rejected(self):
        with pytest.raises(MessageError):
            _layout().bind(3)

    def test_bind_nonpositive_rejected(self):
        layout = MessageLayout("var", [Field("buf", VARIABLE)])
        with pytest.raises(MessageError):
            layout.bind(0)


class TestByteToField:
    def test_every_byte_maps_to_its_field(self):
        layout = _layout()
        owners = [layout.field_of_byte(i).name for i in range(8)]
        assert owners == ["cmd", "sum", "bb_len", "bb_len",
                          "buf", "buf", "buf", "buf"]

    def test_out_of_range_byte_rejected(self):
        with pytest.raises(MessageError):
            _layout().field_of_byte(8)
        with pytest.raises(MessageError):
            _layout().field_of_byte(-1)
