"""Tests for symbolic message views: field_expr, MessageBuilder, equalities."""

import pytest

from repro.errors import MessageError
from repro.messages.concrete import encode
from repro.messages.layout import Field, MessageLayout
from repro.messages.symbolic import (
    MessageBuilder,
    field_bytes,
    field_expr,
    message_vars,
    wire_equalities,
)
from repro.solver import ast, check
from repro.solver.evalmodel import evaluate

LAYOUT = MessageLayout("t", [Field("a", 1), Field("b", 2), Field("c", 1)])


class TestFieldExpr:
    def test_single_byte_field_is_the_byte(self):
        wire = message_vars(LAYOUT)
        assert field_expr(wire, LAYOUT.view("a")) is wire[0]

    def test_multibyte_field_is_big_endian(self):
        wire = tuple(ast.bv_const(v, 8) for v in (1, 0x12, 0x34, 9))
        value = field_expr(wire, LAYOUT.view("b"))
        assert value.is_const
        assert value.value == 0x1234

    def test_field_bytes_slices_wire(self):
        wire = message_vars(LAYOUT)
        assert field_bytes(wire, LAYOUT.view("b")) == (wire[1], wire[2])

    def test_short_wire_rejected(self):
        wire = message_vars(LAYOUT)[:2]
        with pytest.raises(MessageError):
            field_expr(wire, LAYOUT.view("c"))


class TestMessageBuilder:
    def test_int_fields_round_trip_through_encode(self):
        builder = MessageBuilder(LAYOUT)
        builder.set("a", 7).set("b", 0xBEEF).set("c", 3)
        wire = builder.wire()
        concrete = bytes(b.value for b in wire)
        assert concrete == encode(LAYOUT, {"a": 7, "b": 0xBEEF, "c": 3})

    def test_expression_field_split_into_bytes(self):
        builder = MessageBuilder(LAYOUT)
        word = ast.bv_var("w", 16)
        builder.set("a", 0).set("b", word).set("c", 0)
        wire = builder.wire()
        # Solving b == 0x0102 must force the two wire bytes to 1 and 2.
        result = check([ast.eq(field_expr(wire, LAYOUT.view("b")),
                               ast.bv_const(0x0102, 16))])
        assert result.is_sat
        model = dict(result.model)
        assert evaluate(wire[1], model) == 1
        assert evaluate(wire[2], model) == 2

    def test_width_mismatch_rejected(self):
        with pytest.raises(MessageError):
            MessageBuilder(LAYOUT).set("b", ast.bv_var("narrow", 8))

    def test_int_too_large_rejected(self):
        with pytest.raises(MessageError):
            MessageBuilder(LAYOUT).set("a", 256)

    def test_set_bytes_checks_length(self):
        with pytest.raises(MessageError):
            MessageBuilder(LAYOUT).set_bytes("b", [1])

    def test_unassigned_fields_reported_by_name(self):
        builder = MessageBuilder(LAYOUT).set("a", 1)
        with pytest.raises(MessageError, match="b"):
            builder.wire()

    def test_get_returns_assembled_field(self):
        builder = MessageBuilder(LAYOUT).set("b", 0x0A0B)
        assert builder.get("b").value == 0x0A0B


class TestWireEqualities:
    def test_equal_length_gives_bytewise_equalities(self):
        server = message_vars(LAYOUT, "s")
        client = message_vars(LAYOUT, "c")
        eqs = wire_equalities(server, client)
        assert len(eqs) == LAYOUT.total_size
        assert check(eqs).is_sat

    def test_length_mismatch_is_unsat(self):
        server = message_vars(LAYOUT, "s")
        eqs = wire_equalities(server, server[:-1])
        assert not check(eqs).is_sat

    def test_equalities_pin_client_constants(self):
        server = message_vars(LAYOUT, "s")
        client = tuple(ast.bv_const(v, 8) for v in (9, 8, 7, 6))
        result = check(wire_equalities(server, client))
        assert result.is_sat
        assert [result.value(v) for v in server] == [9, 8, 7, 6]
