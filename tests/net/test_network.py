"""Tests for the simulated network, trace and injector."""

import pytest

from repro.errors import NetworkError
from repro.net.inject import Injector
from repro.net.network import Network, Node
from repro.net.trace import Trace


class EchoNode(Node):
    """Replies to every message with the same payload."""

    def handle(self, source, payload, network):
        network.send(self.name, source, payload)


class SinkNode(Node):
    """Stores everything it receives."""

    def __init__(self, name):
        super().__init__(name)
        self.received: list[tuple[str, bytes]] = []

    def handle(self, source, payload, network):
        self.received.append((source, payload))


class CounterNode(Node):
    """Accepts payloads starting with 0x01, counts them."""

    def __init__(self, name):
        super().__init__(name)
        self.accepted = 0

    def handle(self, source, payload, network):
        if payload and payload[0] == 1:
            self.accepted += 1
            network.send(self.name, source, b"ok")


class TestNetwork:
    def test_round_trip(self):
        net = Network()
        net.attach(EchoNode("server"))
        sink = net.attach(SinkNode("client"))
        net.send("client", "server", b"ping")
        net.run()
        assert sink.received == [("server", b"ping")]

    def test_duplicate_name_rejected(self):
        net = Network()
        net.attach(SinkNode("a"))
        with pytest.raises(NetworkError):
            net.attach(SinkNode("a"))

    def test_send_to_unknown_rejected(self):
        with pytest.raises(NetworkError):
            Network().send("x", "ghost", b"")

    def test_in_order_delivery(self):
        net = Network()
        sink = net.attach(SinkNode("s"))
        for i in range(5):
            net.send("c", "s", bytes([i]))
        net.run()
        assert [p[0] for _, p in sink.received] == [0, 1, 2, 3, 4]

    def test_livelock_guard(self):
        net = Network()
        net.attach(EchoNode("a"))
        net.attach(EchoNode("b"))
        net.send("a", "b", b"x")
        with pytest.raises(NetworkError):
            net.run(max_steps=10)

    def test_drop_filter(self):
        net = Network()
        sink = net.attach(SinkNode("s"))
        net.drop_filter = lambda src, dst, payload: payload == b"bad"
        net.send("c", "s", b"bad")
        net.send("c", "s", b"good")
        net.run()
        assert sink.received == [("c", b"good")]
        assert net.trace.count("drop") == 1


class TestTrace:
    def test_records_send_and_deliver(self):
        net = Network()
        net.attach(SinkNode("s"))
        net.send("c", "s", b"m")
        net.run()
        kinds = [e.kind for e in net.trace]
        assert kinds == ["send", "deliver"]

    def test_query_helpers(self):
        trace = Trace()
        trace.record("send", "a", "b", b"1")
        trace.record("deliver", "a", "b", b"1")
        trace.record("send", "c", "b", b"2")
        assert len(trace.sends()) == 2
        assert len(trace.sends("a")) == 1
        assert len(trace.deliveries("b")) == 1
        assert trace.count("send") == 2

    def test_steps_are_monotone(self):
        trace = Trace()
        first = trace.record("send", "a", "b", b"")
        second = trace.record("send", "a", "b", b"")
        assert second.step == first.step + 1


class TestInjector:
    def test_injection_is_spoofed(self):
        net = Network()
        sink = net.attach(SinkNode("server"))
        injector = Injector(net, "server", spoof_source="trusted-client")
        injector.inject(b"evil")
        assert sink.received == [("trusted-client", b"evil")]

    def test_probe_snapshots_surround_injection(self):
        net = Network()
        node = net.attach(CounterNode("server"))
        net.attach(SinkNode("trusted"))
        injector = Injector(net, "server", "trusted",
                            probe=lambda: node.accepted)
        outcome = injector.inject(b"\x01payload")
        assert outcome.probe_before == 0
        assert outcome.probe_after == 1
        assert outcome.changed_state

    def test_rejected_message_changes_nothing(self):
        net = Network()
        node = net.attach(CounterNode("server"))
        net.attach(SinkNode("trusted"))
        injector = Injector(net, "server", "trusted",
                            probe=lambda: node.accepted)
        outcome = injector.inject(b"\x00nope")
        assert not outcome.changed_state
        assert outcome.delivered == 1  # delivered but not accepted

    def test_campaign_labels_each_injection(self):
        net = Network()
        net.attach(SinkNode("server"))
        injector = Injector(net, "server", "c")
        outcomes = injector.campaign([b"a", b"b"], note="trojan")
        assert [o.note for o in outcomes] == ["trojan#0", "trojan#1"]
