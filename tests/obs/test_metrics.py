"""The metrics registry: counters, histograms, mergeable snapshots."""

from repro.obs.metrics import (
    BUCKET_BOUNDS,
    MetricsRegistry,
    merge_snapshots,
)


class TestRegistry:
    def test_counters_and_gauges(self):
        registry = MetricsRegistry()
        registry.add("hits", 2)
        registry.add("hits")
        registry.gauge("depth").set(7)
        snap = registry.snapshot()
        assert snap["counters"] == {"hits": 3}
        assert snap["gauges"] == {"depth": 7}

    def test_histogram_tracks_count_total_min_max(self):
        registry = MetricsRegistry()
        for value in (0.001, 0.5, 0.002):
            registry.observe("lat", value)
        histo = registry.snapshot()["histograms"]["lat"]
        assert histo["count"] == 3
        assert abs(histo["total"] - 0.503) < 1e-12
        assert histo["min"] == 0.001 and histo["max"] == 0.5
        assert sum(histo["buckets"]) == 3

    def test_histogram_bucket_placement(self):
        registry = MetricsRegistry()
        registry.observe("lat", BUCKET_BOUNDS[0])        # first bucket
        registry.observe("lat", BUCKET_BOUNDS[-1] * 10)  # open-ended tail
        buckets = registry.snapshot()["histograms"]["lat"]["buckets"]
        assert buckets[0] == 1 and buckets[-1] == 1

    def test_drain_resets(self):
        registry = MetricsRegistry()
        registry.add("n")
        first = registry.drain()
        assert first["counters"] == {"n": 1}
        assert registry.snapshot()["counters"] == {}

    def test_absorb_folds_a_snapshot(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.add("n", 1)
        a.observe("lat", 0.1)
        b.add("n", 2)
        b.observe("lat", 0.4)
        a.absorb(b.snapshot())
        snap = a.snapshot()
        assert snap["counters"]["n"] == 3
        histo = snap["histograms"]["lat"]
        assert histo["count"] == 2
        assert histo["min"] == 0.1 and histo["max"] == 0.4


class TestMergeSnapshots:
    def test_pure_dict_merge(self):
        a = MetricsRegistry()
        a.add("x", 1)
        b = MetricsRegistry()
        b.add("x", 4)
        b.gauge("g").set(2)
        merged = merge_snapshots(a.snapshot(), b.snapshot())
        assert merged["counters"]["x"] == 5
        assert merged["gauges"]["g"] == 2

    def test_merge_tolerates_empty(self):
        assert merge_snapshots({}, {})["counters"] == {}
        assert merge_snapshots(None, {})["gauges"] == {}
