"""The tracer: spans, budgets, deltas, deterministic merge, file I/O.

Determinism is the load-bearing property: merged traces must come out
identical however worker deltas interleaved in real time, and the
on-disk framing must salvage a torn file exactly like a cache segment.
"""

import json

import pytest

from repro.explore.faults import TruncateSegment, apply_disk_fault
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.obs.trace import (
    TraceDelta,
    Tracer,
    format_summary,
    merge_traces,
    metrics_record,
    read_trace,
    summarize,
    to_chrome_trace,
    write_trace,
)


@pytest.fixture(autouse=True)
def _no_global_tracer():
    """Tests that activate the module global must not leak it."""
    obs_trace.deactivate()
    yield
    obs_trace.deactivate()


class TestActivation:
    def test_off_by_default(self):
        assert obs_trace.active is None
        assert obs_metrics.active is None

    def test_activate_is_idempotent(self):
        first = obs_trace.activate(source="coordinator")
        assert obs_trace.activate() is first
        assert first.metrics is obs_metrics.active

    def test_deactivate_returns_the_tracer_and_clears_metrics(self):
        tracer = obs_trace.activate()
        assert obs_trace.deactivate() is tracer
        assert obs_trace.active is None
        assert obs_metrics.active is None


class TestSpans:
    def test_span_records_nesting_depth(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner", detail=1):
                pass
        # Spans close inner-first, so 'inner' lands before 'outer'.
        inner, outer = tracer.records
        assert inner["name"] == "inner" and inner["depth"] == 1
        assert outer["name"] == "outer" and outer["depth"] == 0
        assert inner["attrs"] == {"detail": 1}
        assert outer["dur"] >= inner["dur"] >= 0.0
        assert [r["seq"] for r in tracer.records] == [0, 1]

    def test_span_depth_recovers_after_exception(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("fails"):
                raise ValueError("boom")
        with tracer.span("after"):
            pass
        assert [r["depth"] for r in tracer.records] == [0, 0]

    def test_events_are_points(self):
        tracer = Tracer()
        tracer.event("tick", n=3)
        (record,) = tracer.records
        assert record["kind"] == "event"
        assert "dur" not in record
        assert record["attrs"] == {"n": 3}

    def test_budget_folds_overflow_into_aggregates(self):
        tracer = Tracer(span_budget=2)
        for _ in range(5):
            with tracer.span("hot"):
                pass
        assert len(tracer.records) == 2
        tracer.flush_aggregates()
        agg = tracer.records[-1]
        assert agg["kind"] == "agg" and agg["name"] == "hot"
        assert agg["attrs"]["count"] == 3
        assert agg["attrs"]["total_dur"] >= 0.0

    def test_flush_resets_budgets(self):
        tracer = Tracer(span_budget=1)
        with tracer.span("a"):
            pass
        with tracer.span("a"):
            pass
        tracer.flush_aggregates()
        with tracer.span("a"):  # fresh budget after the flush
            pass
        kinds = [r["kind"] for r in tracer.records]
        assert kinds == ["span", "agg", "span"]

    def test_span_feeds_metrics_histogram(self):
        registry = obs_metrics.MetricsRegistry()
        tracer = Tracer(metrics=registry)
        with tracer.span("layer"):
            pass
        snap = registry.snapshot()
        assert snap["histograms"]["layer"]["count"] == 1


class TestDeltas:
    def test_take_delta_drains_and_keeps_seq_running(self):
        tracer = Tracer(source="worker")
        with tracer.span("one"):
            pass
        first = tracer.take_delta()
        with tracer.span("two"):
            pass
        second = tracer.take_delta()
        assert [r["name"] for r in first.records] == ["one"]
        assert [r["name"] for r in second.records] == ["two"]
        # The counter spans deltas: successive records stay ordered.
        assert second.records[0]["seq"] > first.records[0]["seq"]
        assert tracer.records == []

    def test_delta_ships_metrics_snapshot(self):
        registry = obs_metrics.MetricsRegistry()
        tracer = Tracer(metrics=registry)
        with tracer.span("layer"):
            pass
        delta = tracer.take_delta()
        assert delta.metrics["histograms"]["layer"]["count"] == 1
        # drained: the next delta starts fresh
        assert tracer.take_delta().metrics["histograms"] == {}


def _delta(source, names, seq_start=0):
    records = tuple({"seq": seq_start + i, "kind": "event", "name": name,
                     "ts": float(i), "depth": 0, "src": source}
                    for i, name in enumerate(names))
    return TraceDelta(source=source, records=records)


class TestMerge:
    def test_merge_orders_coordinator_then_workers_by_id(self):
        coord = [{"seq": 5, "kind": "event", "name": "c0", "ts": 0.0,
                  "depth": 0, "src": "coordinator"}]
        deltas = {2: [_delta("worker", ["w2a"])],
                  0: [_delta("worker", ["w0a"]), _delta("worker", ["w0b"])]}
        merged = merge_traces(coord, deltas)
        assert [(r["src"], r["name"]) for r in merged] == [
            ("coordinator", "c0"), ("worker-0", "w0a"),
            ("worker-0", "w0b"), ("worker-2", "w2a")]
        # renumbered per source
        assert [r["seq"] for r in merged] == [0, 0, 1, 0]

    def test_merge_is_stable_under_delta_arrival_permutation(self):
        coord = [{"seq": 0, "kind": "event", "name": "seed", "ts": 0.0,
                  "depth": 0, "src": "coordinator"}]
        deltas = {0: [_delta("worker", ["a"])], 1: [_delta("worker", ["b"])]}
        permuted = {1: deltas[1], 0: deltas[0]}  # reversed insertion order
        assert merge_traces(coord, deltas) == merge_traces(coord, permuted)

    def test_respawned_worker_seq_restart_cannot_collide(self):
        # Two deltas from the same wid both starting at seq 0 (a respawn
        # restarts the local counter) renumber into one gapless range.
        deltas = {0: [_delta("worker", ["a", "b"], seq_start=0),
                      _delta("worker", ["c"], seq_start=0)]}
        merged = merge_traces([], deltas)
        assert [r["seq"] for r in merged] == [0, 1, 2]

    def test_extra_records_append_at_the_end(self):
        trailer = metrics_record({"counters": {"x": 1}})
        merged = merge_traces([], {}, extra_records=[trailer])
        assert merged[-1]["kind"] == "metrics"


class TestFileRoundTrip:
    def test_write_read_round_trip(self, tmp_path):
        records = merge_traces(
            [], {0: [_delta("worker", ["a", "b"])]},
            extra_records=[metrics_record({"counters": {"n": 2}})])
        path = write_trace(tmp_path / "run" / "trace.jsonl", records)
        loaded = read_trace(path)
        assert not loaded.damaged
        assert loaded.records == records

    def test_torn_trace_salvages_prefix(self, tmp_path):
        records = [dict(r, seq=i) for i, r in enumerate(
            _delta("coordinator", ["a", "b", "c"]).records)]
        path = write_trace(tmp_path / "trace.jsonl", records)
        apply_disk_fault(path, TruncateSegment(drop_bytes=2))
        loaded = read_trace(path)
        assert loaded.damaged
        assert [r["name"] for r in loaded.records] == ["a", "b"]


class TestChromeExport:
    def test_export_round_trips_through_json(self, tmp_path):
        tracer = Tracer(source="coordinator")
        with tracer.span("phase", shard=1):
            tracer.event("tick")
        records = merge_traces(tracer.records,
                               {1: [_delta("worker", ["w"])]},
                               extra_records=[metrics_record({})])
        chrome = json.loads(json.dumps(to_chrome_trace(records)))
        assert chrome["displayTimeUnit"] == "ms"
        events = chrome["traceEvents"]
        names = {e["name"] for e in events}
        assert {"thread_name", "phase", "tick", "w", "metrics"} <= names
        meta = [e for e in events if e["ph"] == "M"]
        # coordinator is tid 0, workers follow in sorted order
        assert meta[0]["args"]["name"] == "coordinator"
        span = next(e for e in events if e["name"] == "phase")
        assert span["ph"] == "X" and span["dur"] >= 0
        assert span["args"] == {"shard": 1}
        assert all(e["ts"] >= 0 for e in events if "ts" in e)

    def test_agg_records_become_instants(self):
        tracer = Tracer(span_budget=0)
        with tracer.span("hot"):
            pass
        tracer.flush_aggregates()
        chrome = to_chrome_trace(tracer.records)
        instant = next(e for e in chrome["traceEvents"]
                       if e["name"] == "hot (agg)")
        assert instant["ph"] == "i"
        assert instant["args"]["count"] == 1


class TestSummarize:
    def test_summary_folds_spans_aggs_events_metrics(self):
        tracer = Tracer(span_budget=1)
        with tracer.span("layer"):
            pass
        with tracer.span("layer"):
            pass
        tracer.event("steal")
        tracer.flush_aggregates()
        records = list(tracer.records)
        records.append(metrics_record({"counters": {"hits": 3}}))
        summary = summarize(records)
        assert summary["spans"]["layer"]["count"] == 2  # span + agg fold
        assert summary["events"]["steal"] == 1
        assert summary["metrics"]["counters"]["hits"] == 3
        text = format_summary(summary, damaged=True, reason="torn tail")
        assert "layer" in text and "torn tail" in text and "hits" in text
