"""Unit tests for expression construction and simplification."""

import pytest

from repro.errors import SortError
from repro.solver import ast
from repro.solver.ast import (
    FALSE,
    TRUE,
    and_,
    bool_var,
    bv_const,
    bv_var,
    eq,
    ite,
    ne,
    not_,
    or_,
    ult,
    zext,
)
from repro.solver.sorts import BOOL, bitvec_sort


X = bv_var("x", 8)
Y = bv_var("y", 8)


class TestConstants:
    def test_const_wraps_into_range(self):
        assert bv_const(256, 8).value == 0
        assert bv_const(-1, 8).value == 255

    def test_bool_constants(self):
        assert TRUE.is_true
        assert FALSE.is_false
        assert not TRUE.is_false

    def test_value_on_non_const_raises(self):
        with pytest.raises(SortError):
            _ = X.value


class TestConstantFolding:
    def test_arithmetic_folds(self):
        assert (bv_const(200, 8) + bv_const(100, 8)).value == 44
        assert (bv_const(5, 8) - bv_const(10, 8)).value == 251
        assert (bv_const(16, 8) * bv_const(17, 8)).value == 16

    def test_division_by_zero_is_all_ones(self):
        assert ast.udiv(bv_const(7, 8), bv_const(0, 8)).value == 255
        assert ast.urem(bv_const(7, 8), bv_const(0, 8)).value == 7

    def test_shift_folds(self):
        assert (bv_const(1, 8) << bv_const(3, 8)).value == 8
        assert (bv_const(128, 8) >> bv_const(3, 8)).value == 16
        assert (bv_const(1, 8) << bv_const(9, 8)).value == 0

    def test_comparison_folds(self):
        assert ult(bv_const(1, 8), bv_const(2, 8)).is_true
        assert ast.slt(bv_const(255, 8), bv_const(0, 8)).is_true
        assert ast.sle(bv_const(1, 8), bv_const(255, 8)).is_false


class TestIdentities:
    def test_additive_identity(self):
        assert (X + 0) is X or (X + 0) == X
        assert (X - 0) == X

    def test_add_reassociation(self):
        assert ((X + 3) + 7) == (X + 10)

    def test_multiplicative_identities(self):
        assert (X * 1) == X
        assert (X * 0).value == 0

    def test_bitwise_identities(self):
        assert (X & 0xFF) == X
        assert (X & 0).value == 0
        assert (X | 0) == X
        assert (X ^ 0) == X
        assert (X ^ X).value == 0

    def test_self_comparisons(self):
        assert eq(X, X).is_true
        assert ult(X, X).is_false
        assert ast.ule(X, X).is_true
        assert ast.sub(X, X).value == 0

    def test_double_negations(self):
        assert not_(not_(bool_var("p"))) == bool_var("p")
        assert (~(~X)) == X


class TestBooleanConnectives:
    def test_and_shortcuts(self):
        p = bool_var("p")
        assert and_(p, TRUE) == p
        assert and_(p, FALSE).is_false
        assert and_().is_true

    def test_or_shortcuts(self):
        p = bool_var("p")
        assert or_(p, FALSE) == p
        assert or_(p, TRUE).is_true
        assert or_().is_false

    def test_and_flattens_and_dedups(self):
        p, q = bool_var("p"), bool_var("q")
        nested = and_(and_(p, q), p)
        assert nested.op == "and"
        assert len(nested.args) == 2

    def test_ite_shortcuts(self):
        assert ite(TRUE, X, Y) == X
        assert ite(FALSE, X, Y) == Y
        assert ite(bool_var("p"), X, X) == X


class TestSortChecking:
    def test_mixed_width_addition_rejected(self):
        with pytest.raises(SortError):
            _ = X + bv_var("w", 16)

    def test_bool_arithmetic_rejected(self):
        with pytest.raises(SortError):
            _ = bool_var("p") + bool_var("q")

    def test_symbolic_bool_coercion_raises(self):
        with pytest.raises(SortError):
            bool(ult(X, Y))

    def test_python_equality_with_int_raises(self):
        with pytest.raises(SortError):
            _ = X == 5

    def test_zext_narrowing_rejected(self):
        with pytest.raises(SortError):
            zext(bv_var("w", 16), 8)


class TestStructuralIdentity:
    def test_equal_trees_are_equal_and_hash_equal(self):
        a = (X + 1) * Y
        b = (bv_var("x", 8) + 1) * bv_var("y", 8)
        assert a == b
        assert hash(a) == hash(b)

    def test_usable_as_dict_keys(self):
        table = {X + 1: "one"}
        assert table[bv_var("x", 8) + 1] == "one"

    def test_ne_builds_negated_equality(self):
        pred = ne(X, bv_const(3, 8))
        assert pred.op == "not"
        assert pred.args[0].op == "eq"


class TestWidthOps:
    def test_extract_bounds(self):
        assert ast.extract(bv_const(0xAB, 8), 7, 4).value == 0xA
        assert ast.extract(bv_const(0xAB, 8), 3, 0).value == 0xB

    def test_concat_folds(self):
        assert ast.concat(bv_const(0xAB, 8), bv_const(0xCD, 8)).value == 0xABCD

    def test_sext_folds(self):
        assert ast.sext(bv_const(0x80, 8), 16).value == 0xFF80
        assert ast.sext(bv_const(0x7F, 8), 16).value == 0x007F

    def test_zext_noop_at_same_width(self):
        assert zext(X, 8) == X
