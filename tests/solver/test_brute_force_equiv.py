"""Solver answers must agree with brute force on small domains.

These properties pin the solver's soundness *and* completeness: for
random constraint sets over a couple of byte variables, `check` says SAT
exactly when exhaustive enumeration finds a model, and any model it
returns satisfies everything.
"""

from hypothesis import given, settings, strategies as st

from repro.solver import ast, check
from repro.solver.ast import bv_const, bv_var
from repro.solver.evalmodel import all_hold

A = bv_var("a", 8)
B = bv_var("b", 8)

_COMPARISONS = ["eq", "ne", "ult", "ule", "slt", "sle"]
_ARITH = ["add", "sub", "bvand", "bvor", "bvxor"]


def _term(which: int, constant: int):
    """A small arithmetic term over A and B."""
    op = _ARITH[which % len(_ARITH)]
    return getattr(ast, op)(A if which % 2 else B, bv_const(constant, 8))


def _constraint(comparison: int, which: int, constant: int, negate: bool):
    pred = getattr(ast, _COMPARISONS[comparison % len(_COMPARISONS)])(
        _term(which, constant), B if which % 3 else bv_const(constant, 8))
    return ast.not_(pred) if negate else pred


CONSTRAINT = st.tuples(st.integers(0, 5), st.integers(0, 4),
                       st.integers(0, 255), st.booleans())


@settings(max_examples=120, deadline=None)
@given(specs=st.lists(CONSTRAINT, min_size=1, max_size=3))
def test_check_agrees_with_brute_force(specs):
    constraints = [_constraint(*spec) for spec in specs]
    result = check(constraints)
    brute_sat = any(
        all_hold(constraints, {A: a, B: b})
        for a in range(256) for b in range(256))
    assert result.is_sat == brute_sat
    if result.is_sat:
        assert all_hold(constraints, dict(result.model))


@settings(max_examples=60, deadline=None)
@given(specs=st.lists(CONSTRAINT, min_size=1, max_size=3),
       extra=st.integers(0, 255))
def test_disjunction_of_constraints(specs, extra):
    arms = [_constraint(*spec) for spec in specs]
    disjunction = ast.any_of(arms)
    pin = ast.eq(A, bv_const(extra, 8))
    result = check([disjunction, pin])
    brute_sat = any(
        all_hold([disjunction, pin], {A: a, B: b})
        for a in range(256) for b in range(256))
    assert result.is_sat == brute_sat


@settings(max_examples=60, deadline=None)
@given(value=st.integers(0, 0xFFFF), shift=st.integers(0, 15))
def test_shift_and_extract_agree(value, shift):
    w = bv_var("w", 16)
    shifted = ast.lshr(w, bv_const(shift, 16))
    low_byte = ast.extract(shifted, 7, 0)
    result = check([ast.eq(w, bv_const(value, 16)),
                    ast.eq(low_byte, bv_const((value >> shift) & 0xFF, 8))])
    assert result.is_sat


@settings(max_examples=40, deadline=None)
@given(value=st.integers(0, 255), width=st.sampled_from([16, 24, 32]))
def test_sext_zext_consistency(value, width):
    z = ast.zext(A, width)
    s = ast.sext(A, width)
    result = check([ast.eq(A, bv_const(value, 8))], extra_vars=[A])
    model = dict(result.model)
    from repro.solver.evalmodel import evaluate

    assert evaluate(z, model) == value
    expected = value if value < 128 else value | (((1 << (width - 8)) - 1) << 8)
    assert evaluate(s, model) == expected
