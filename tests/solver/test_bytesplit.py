"""Tests for wide-variable byte splitting and the search upgrades.

These target the solver features the Achilles workloads lean on hardest:
byte decomposition of wide variables, structural equality decomposition,
DPLL-style disjunction splitting, and add-chain inversion.
"""

from hypothesis import given, settings, strategies as st

from repro.solver import ast, check
from repro.solver.ast import bv_const, bv_var
from repro.solver.evalmodel import all_hold, evaluate
from repro.solver.solver import Solver, _byte_split, _flatten

X32 = bv_var("x", 32)
Y16 = bv_var("y", 16)
B = bv_var("b", 8)


class TestByteSplit:
    def test_wide_vars_replaced(self):
        constraints = [X32 < 100]
        split, defs = _byte_split(constraints)
        assert len(defs) == 1
        original, combined = defs[0]
        assert original is X32
        assert combined.width == 32

    def test_narrow_vars_untouched(self):
        constraints = [B < 5]
        split, defs = _byte_split(constraints)
        assert split == constraints
        assert defs == []

    def test_model_rebuilt_for_original_vars(self):
        result = check([ast.eq(X32, bv_const(0xDEADBEEF, 32))])
        assert result.is_sat
        assert result.value(X32) == 0xDEADBEEF

    @settings(max_examples=50, deadline=None)
    @given(value=st.integers(0, 0xFFFF))
    def test_sixteen_bit_equality_roundtrip(self, value):
        result = check([ast.eq(Y16, bv_const(value, 16))])
        assert result.is_sat
        assert result.value(Y16) == value

    @settings(max_examples=40, deadline=None)
    @given(lo=st.integers(0, 0xFFFE))
    def test_range_constraints_solved(self, lo):
        result = check([Y16 > lo])
        assert result.is_sat
        assert result.value(Y16) > lo

    def test_signed_constraint_on_wide_var(self):
        result = check([X32.slt(0)])
        assert result.is_sat
        assert result.value(X32) >= 1 << 31

    def test_unsat_preserved(self):
        assert not check([X32 < 10, X32 > 20]).is_sat


class TestExtractRewrites:
    def test_extract_of_concat_selects_part(self):
        combined = ast.concat(bv_var("hi", 8), bv_var("lo", 8))
        assert ast.extract(combined, 7, 0) is combined.args[1]
        assert ast.extract(combined, 15, 8) is combined.args[0]

    def test_extract_straddling_concat(self):
        hi, lo = bv_var("hi", 8), bv_var("lo", 8)
        middle = ast.extract(ast.concat(hi, lo), 11, 4)
        # Equivalent to (hi[3:0] . lo[7:4]).
        assert middle.op == "concat"
        model = {hi: 0xAB, lo: 0xCD}
        assert evaluate(middle, model) == ((0xABCD >> 4) & 0xFF)

    def test_extract_of_extract_composes(self):
        inner = ast.extract(bv_var("w", 32), 23, 8)
        outer = ast.extract(inner, 11, 4)
        assert outer.op == "extract"
        assert outer.params == (19, 12)

    def test_extract_of_zext_inside(self):
        assert ast.extract(ast.zext(B, 32), 7, 0) is B

    def test_extract_of_zext_extension_zone_is_zero(self):
        top = ast.extract(ast.zext(B, 32), 31, 16)
        assert top.is_const and top.value == 0

    @settings(max_examples=60, deadline=None)
    @given(value=st.integers(0, 0xFFFFFFFF), hi=st.integers(0, 31),
           lo=st.integers(0, 31))
    def test_rewrites_preserve_semantics(self, value, hi, lo):
        if lo > hi:
            hi, lo = lo, hi
        w = bv_var("w", 32)
        parts = ast.concat(ast.extract(w, 31, 16), ast.extract(w, 15, 0))
        rewritten = ast.extract(parts, hi, lo)
        assert evaluate(rewritten, {w: value}) == \
            (value >> lo) & ((1 << (hi - lo + 1)) - 1)


class TestEqDecomposition:
    def test_concat_vs_concat_splits(self):
        a = ast.concat(bv_var("a1", 8), bv_var("a0", 8))
        b = ast.concat(bv_var("b1", 8), bv_var("b0", 8))
        decomposed = ast.eq(a, b)
        assert decomposed.op == "and"

    def test_concat_vs_const_splits(self):
        a = ast.concat(bv_var("a1", 8), bv_var("a0", 8))
        decomposed = ast.eq(a, bv_const(0x1234, 16))
        assert decomposed.op == "and"
        result = check(_flatten([decomposed]))
        assert result.value(a.args[0]) == 0x12
        assert result.value(a.args[1]) == 0x34

    def test_misaligned_concats_not_split(self):
        a = ast.concat(bv_var("a", 4), bv_var("b", 12))
        b = ast.concat(bv_var("c", 8), bv_var("d", 8))
        assert ast.eq(a, b).op == "eq"


class TestDisjunctionSplitting:
    def test_or_of_equalities(self):
        constraint = ast.or_(ast.eq(B, bv_const(7, 8)),
                             ast.eq(B, bv_const(200, 8)))
        result = check([constraint])
        assert result.value(B) in (7, 200)

    def test_or_with_unsat_arm(self):
        constraint = ast.or_(ast.and_(B < 5, B > 10),
                             ast.eq(B, bv_const(42, 8)))
        result = check([constraint])
        assert result.value(B) == 42

    def test_nested_disjunctions(self):
        c = bv_var("c", 8)
        constraint = ast.or_(
            ast.and_(ast.eq(B, bv_const(1, 8)),
                     ast.or_(ast.eq(c, bv_const(2, 8)),
                             ast.eq(c, bv_const(3, 8)))),
            ast.and_(ast.eq(B, bv_const(9, 8)), ast.eq(c, bv_const(9, 8))))
        result = check([constraint])
        model = dict(result.model)
        assert all_hold([constraint], model)

    def test_not_of_and_splits(self):
        constraint = ast.not_(ast.and_(ast.eq(B, bv_const(5, 8)),
                                       ast.eq(bv_var("c", 8),
                                              bv_const(6, 8))))
        result = check([constraint, ast.eq(B, bv_const(5, 8))])
        assert result.is_sat
        assert result.value(bv_var("c", 8)) != 6


class TestAddChainInversion:
    def test_checksum_style_equation_solves_fast(self):
        # sum of 8 bytes pinned to a constant: the last byte must invert.
        terms = [bv_var(f"t{i}", 8) for i in range(8)]
        total = terms[0]
        for term in terms[1:]:
            total = ast.add(total, term)
        solver = Solver(max_branch_steps=50_000)
        result = solver.check(
            [ast.eq(total, bv_const(0x42, 8))]
            + [ast.eq(t, bv_const(7, 8)) for t in terms[:-1]])
        assert result.is_sat
        assert (7 * 7 + result.value(terms[-1])) & 0xFF == 0x42
        # Inversion, not enumeration: barely any search steps.
        assert solver.stats.branch_steps < 300

    def test_colliding_sums_found(self):
        a, b = bv_var("a", 8), bv_var("b", 8)
        c, d = bv_var("c", 8), bv_var("d", 8)
        result = check([
            ast.eq(ast.add(a, b), ast.add(c, d)),
            a < 10, c > 200,
        ])
        assert result.is_sat
        model = dict(result.model)
        assert (model[a] + model[b]) & 0xFF == (model[c] + model[d]) & 0xFF
