"""Tests for expression interning and the canonical query cache."""

from repro.solver import ast
from repro.solver.ast import and_, bool_var, bv_const, bv_var, eq, not_, or_, ule, ult
from repro.solver.cache import QueryCache
from repro.solver.solver import Solver
from repro.symex.engine import Engine, EngineConfig

X = bv_var("x", 8)
Y = bv_var("y", 8)


class TestInterning:
    def test_equal_constructions_are_identical(self):
        e1 = (X + 1) * Y
        e2 = (bv_var("x", 8) + 1) * bv_var("y", 8)
        assert e1 is e2

    def test_distinct_constructions_are_distinct(self):
        assert (X + 1) is not (X + 2)
        assert bv_var("x", 8) is not bv_var("x", 16)
        assert bv_var("a", 8) is not bool_var("a")

    def test_interning_spans_operator_families(self):
        assert ult(X, Y) is ult(X, Y)
        assert and_(bool_var("p"), bool_var("q")) is \
            and_(bool_var("p"), bool_var("q"))
        assert ast.extract(X, 7, 4) is ast.extract(X, 7, 4)

    def test_copy_and_pickle_preserve_identity(self):
        import copy
        import pickle

        expr = or_(eq(X, bv_const(3, 8)), ult(X, Y))
        assert copy.copy(expr) is expr
        assert copy.deepcopy(expr) is expr
        assert pickle.loads(pickle.dumps(expr)) is expr

    def test_structural_equality_matches_identity(self):
        e1 = not_(ule(X, Y))
        e2 = not_(ule(X, Y))
        assert e1 == e2 and e1 is e2
        assert hash(e1) == hash(e2)

    def test_transient_expressions_are_reclaimed(self):
        """Interning and the memo tables must not pin dead expressions:
        the weak tables exist precisely so long runs stay bounded."""
        import gc

        from repro.solver import ast as ast_module
        from repro.solver.simplify import _CANON_CACHE, canonicalize
        from repro.solver.walk import _VARS_CACHE, collect_vars

        def churn():
            for i in range(500):
                x = bv_var(f"transient{i}", 8)
                expr = (x + 3) * bv_var(f"transient_rhs{i}", 8)
                canonicalize(expr)
                collect_vars(expr)

        gc.collect()
        before = (len(ast_module._INTERN_TABLE), len(_CANON_CACHE),
                  len(_VARS_CACHE))
        churn()
        gc.collect()
        after = (len(ast_module._INTERN_TABLE), len(_CANON_CACHE),
                 len(_VARS_CACHE))
        slack = 20  # live fixtures/module constants may drift slightly
        assert after[0] <= before[0] + slack, "intern table leaked"
        assert after[1] <= before[1] + slack, "canonicalization memo leaked"
        assert after[2] <= before[2] + slack, "collect_vars memo leaked"


class TestQueryCache:
    def test_feasibility_miss_then_hit(self):
        cache = QueryCache()
        key = cache.key([ult(X, bv_const(10, 8))])
        assert cache.get_feasible(key) is None
        cache.put_feasible(key, True)
        assert cache.get_feasible(key) is True
        assert cache.stats.misses == 1
        assert cache.stats.hits == 1

    def test_syntactic_variants_share_an_entry(self):
        cache = QueryCache()
        cache.put_feasible(cache.key([and_(ult(X, Y), eq(Y, bv_const(9, 8)))]),
                           True)
        variant = [eq(bv_const(9, 8), Y), not_(ule(Y, X))]
        assert cache.get_feasible(cache.key(variant)) is True

    def test_trivially_unsat_key(self):
        cache = QueryCache()
        key = cache.key([ult(X, Y), ast.FALSE])
        assert cache.is_trivially_unsat(key)

    def test_model_entries_imply_feasibility(self):
        cache = QueryCache()
        key = cache.key([eq(X, bv_const(5, 8))])
        cache.put_model(key, {X: 5})
        assert cache.get_feasible(key) is True
        hit, model = cache.get_model(key)
        assert hit and model == {X: 5}

    def test_hit_rate(self):
        cache = QueryCache()
        assert cache.stats.hit_rate == 0.0
        key = cache.key([ult(X, Y)])
        cache.get_feasible(key)          # miss
        cache.put_feasible(key, True)
        cache.get_feasible(key)          # hit
        assert cache.stats.hit_rate == 0.5

    def test_clear_drops_entries_but_keeps_counters(self):
        cache = QueryCache()
        key = cache.key([ult(X, Y)])
        cache.put_feasible(key, True)
        cache.get_feasible(key)
        cache.clear()
        assert len(cache) == 0
        assert cache.stats.hits == 1
        assert cache.get_feasible(key) is None


class TestEngineCaching:
    def test_repeated_is_feasible_hits_cache(self):
        engine = Engine(EngineConfig())
        pc = (ult(X, bv_const(10, 8)), eq(Y, X + 1))
        assert engine.is_feasible(pc)
        queries_after_first = engine.solver.stats.queries
        assert engine.is_feasible(pc)
        assert engine.solver.stats.queries == queries_after_first
        assert engine.solver.stats.cache_hits == 1
        assert engine.solver.stats.cache_misses == 1

    def test_variant_queries_hit_the_same_entry(self):
        engine = Engine(EngineConfig())
        assert engine.is_feasible((and_(ult(X, Y), eq(Y, bv_const(9, 8))),))
        queries = engine.solver.stats.queries
        # Reordered, commuted, and negation-flipped variant of the same query.
        assert engine.is_feasible((eq(bv_const(9, 8), Y), not_(ule(Y, X))))
        assert engine.solver.stats.queries == queries

    def test_trivially_false_query_skips_the_solver(self):
        engine = Engine(EngineConfig())
        assert not engine.is_feasible((ult(X, X),))
        assert engine.solver.stats.queries == 0

    def test_solve_returns_cached_model_with_defaults(self):
        engine = Engine(EngineConfig())
        first = engine.solve((eq(X, bv_const(5, 8)),))
        assert first is not None and first[X] == 5
        # A canonically-equal query mentioning an extra (folded-away)
        # variable still gets a complete model.
        again = engine.solve((eq(X, bv_const(5, 8)), eq(Y, Y)))
        assert again is not None and again[X] == 5
        assert again.get(Y, 0) == 0

    def test_shared_cache_across_engines(self):
        shared = QueryCache()
        first = Engine(EngineConfig(), query_cache=shared)
        second = Engine(EngineConfig(), query_cache=shared)
        pc = (ult(X, bv_const(100, 8)),)
        assert first.is_feasible(pc)
        assert second.is_feasible(pc)
        assert second.solver.stats.queries == 0
        assert shared.stats.hits == 1

    def test_repeated_exploration_hits_the_cache(self):
        """Re-exploring the same program re-poses every branch query."""

        def program(ctx):
            x = ctx.fresh_byte("x")
            ctx.branch(x < 100)
            ctx.branch(x.eq(5))

        engine = Engine(EngineConfig())
        engine.explore(program)
        misses_first = engine.query_cache.stats.misses
        assert misses_first > 0
        engine.explore(program)
        stats = engine.query_cache.stats
        assert stats.misses == misses_first  # second run adds no misses
        assert stats.hits >= misses_first
        assert stats.hit_rate > 0.0
