"""The durable query cache: round trips, salvage, maintenance.

The corruption matrix is the heart: every damage position the salvage
code distinguishes (file header, mid-record payload, truncated tail,
torn final write) is applied via the deterministic disk faults and the
load must still succeed with exactly the predicted loaded/salvaged/
dropped counts — never a crash, never an untrusted record.
"""

import logging
import pickle
import warnings

import pytest

from repro.explore.faults import (
    CorruptRecord,
    TornWrite,
    TruncateSegment,
    apply_disk_fault,
)
from repro.solver.ast import bv_const, bv_var, eq, ult
from repro.solver.cache import QueryCache
from repro.solver.diskcache import (
    FORMAT_VERSION,
    HEADER,
    MAGIC,
    DiskCacheStore,
    key_fingerprint,
    record_spans,
    scan_frames,
    write_segment,
)

X = bv_var("x", 8)
Y = bv_var("y", 8)


def _keys(count):
    """Distinct canonical keys with deterministic content."""
    cache = QueryCache()
    return [cache.key((ult(X, bv_const(i + 1, 8)), eq(Y, bv_const(i, 8))))
            for i in range(count)]


def _store_with(tmp_path, feasible=(), models=()):
    store = DiskCacheStore(tmp_path / "cache")
    for key, value in feasible:
        store.record_feasible(key, value)
    for key, model in models:
        store.record_model(key, model)
    store.flush()
    return store


class TestRoundTrip:
    def test_feasibility_and_models_round_trip(self, tmp_path):
        keys = _keys(3)
        model = {X: 7, Y: 2}
        store = _store_with(tmp_path,
                            feasible=[(keys[0], True), (keys[1], False)],
                            models=[(keys[2], model)])
        fresh = QueryCache()
        report = DiskCacheStore(tmp_path / "cache").load_into(fresh)
        assert report.loaded_records == 3
        assert report.salvaged_records == report.dropped_records == 0
        assert fresh.get_feasible(keys[0]) is True
        assert fresh.get_feasible(keys[1]) is False
        assert fresh.get_model(keys[2]) == (True, model)
        assert all(fresh.is_disk_loaded(k) for k in keys)
        assert fresh.stats.disk_hits == 3

    def test_second_flush_is_empty(self, tmp_path):
        keys = _keys(2)
        store = _store_with(tmp_path, feasible=[(keys[0], True)])
        assert store.flush() is None  # nothing new buffered
        store.record_feasible(keys[0], True)  # already persisted: deduped
        assert store.flush() is None
        store.record_feasible(keys[1], False)
        assert store.flush() is not None
        assert len(store.segment_paths()) == 2

    def test_loaded_keys_are_not_repersisted(self, tmp_path):
        keys = _keys(1)
        _store_with(tmp_path, feasible=[(keys[0], True)])
        warm = DiskCacheStore(tmp_path / "cache")
        cache = QueryCache()
        warm.load_into(cache)
        cache.put_feasible(keys[0], True)
        assert warm.flush() is None

    def test_local_entries_win_over_disk(self, tmp_path):
        keys = _keys(1)
        _store_with(tmp_path, models=[(keys[0], {X: 5})])
        cache = QueryCache()
        cache.put_model(keys[0], {X: 9})
        DiskCacheStore(tmp_path / "cache").load_into(cache)
        assert cache.get_model(keys[0]) == (True, {X: 9})

    def test_segment_bytes_are_deterministic(self, tmp_path):
        keys = _keys(4)
        a = _store_with(tmp_path / "a", feasible=[(k, True) for k in keys])
        b = _store_with(tmp_path / "b", feasible=[(k, True) for k in keys])
        assert (a.segment_paths()[0].read_bytes()
                == b.segment_paths()[0].read_bytes())


class TestCorruptionMatrix:
    """Damage at every distinguished position still opens the cache."""

    def _populated(self, tmp_path, records=4):
        keys = _keys(records)
        store = _store_with(tmp_path, feasible=[(k, bool(i % 2))
                                                for i, k in enumerate(keys)])
        return store.segment_paths()[0], keys

    def _load(self, tmp_path):
        cache = QueryCache()
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            report = DiskCacheStore(tmp_path / "cache").load_into(cache)
        return cache, report

    def test_header_corruption_drops_the_segment(self, tmp_path):
        segment, _keys_ = self._populated(tmp_path)
        apply_disk_fault(segment, CorruptRecord(record=-1))
        cache, report = self._load(tmp_path)
        assert report.segments_damaged == 1
        assert report.records_applied == 0
        assert report.dropped_records == 1  # opaque: count unknowable
        assert len(cache) == 0

    def test_mid_record_corruption_salvages_the_prefix(self, tmp_path):
        segment, keys = self._populated(tmp_path, records=4)
        apply_disk_fault(segment, CorruptRecord(record=2))
        cache, report = self._load(tmp_path)
        # Records 0-1 precede the damage; 2 fails its CRC; 3 is behind
        # an untrustworthy length field and is abandoned with it.
        assert report.salvaged_records == 2
        assert report.dropped_records == 1
        assert cache.get_feasible(keys[0]) is False
        assert cache.get_feasible(keys[1]) is True
        assert cache.get_feasible(keys[2]) is None

    def test_first_record_corruption_salvages_nothing(self, tmp_path):
        segment, _ = self._populated(tmp_path)
        apply_disk_fault(segment, CorruptRecord(record=0))
        _, report = self._load(tmp_path)
        assert report.salvaged_records == 0
        assert report.dropped_records == 1

    def test_truncated_tail_salvages_the_prefix(self, tmp_path):
        segment, keys = self._populated(tmp_path, records=3)
        apply_disk_fault(segment, TruncateSegment(drop_bytes=1))
        cache, report = self._load(tmp_path)
        assert report.salvaged_records == 2
        assert cache.get_feasible(keys[1]) is True

    def test_torn_final_write_salvages_the_prefix(self, tmp_path):
        segment, keys = self._populated(tmp_path, records=3)
        apply_disk_fault(segment, TornWrite())
        cache, report = self._load(tmp_path)
        assert report.salvaged_records == 2
        assert report.dropped_records == 1
        assert cache.get_feasible(keys[0]) is False

    def test_version_mismatch_drops_the_segment(self, tmp_path):
        segment, _ = self._populated(tmp_path)
        data = bytearray(segment.read_bytes())
        data[len(MAGIC)] = FORMAT_VERSION + 1
        segment.write_bytes(bytes(data))
        _, report = self._load(tmp_path)
        assert report.segments_damaged == 1
        assert report.records_applied == 0

    def test_fingerprint_mismatch_drops_the_record(self, tmp_path):
        """A record whose pickle decodes but whose stored fingerprint
        disagrees with the recomputed one is never trusted."""
        keys = _keys(1)
        directory = tmp_path / "cache"
        directory.mkdir()
        payload = pickle.dumps(
            ("f", key_fingerprint(keys[0]), tuple(_keys(2)[1]), True))
        write_segment(directory / "seg-00000001-000001.qc", [payload])
        cache, report = self._load(tmp_path)
        assert report.dropped_records == 1
        assert report.records_applied == 0
        assert len(cache) == 0

    def test_damage_never_warps_answers(self, tmp_path):
        """Whatever survives a corrupted load answers exactly as the
        clean cache would; everything else is a miss."""
        segment, keys = self._populated(tmp_path, records=6)
        clean = QueryCache()
        DiskCacheStore(tmp_path / "cache").load_into(clean)
        apply_disk_fault(segment, CorruptRecord(record=3, offset=2))
        damaged, _ = self._load(tmp_path)
        for key in keys:
            expected = clean._feasible.get(key)
            got = damaged._feasible.get(key)
            assert got is None or got == expected

    def test_damaged_load_logs_warning(self, tmp_path, caplog):
        segment, _ = self._populated(tmp_path)
        apply_disk_fault(segment, TruncateSegment(drop_bytes=3))
        with caplog.at_level(logging.WARNING, logger="repro.solver.diskcache"):
            DiskCacheStore(tmp_path / "cache").load_into(QueryCache())
        assert any("salvaged" in record.getMessage()
                   for record in caplog.records)


class TestMaintenance:
    def test_compact_merges_segments(self, tmp_path):
        keys = _keys(4)
        store = DiskCacheStore(tmp_path / "cache")
        for key in keys[:2]:
            store.record_feasible(key, True)
        store.flush()
        store.record_model(keys[0], {X: 1})  # subsumes its feasibility bit
        for key in keys[2:]:
            store.record_feasible(key, False)
        store.flush()
        segments, kept = store.compact()
        assert segments == 2
        assert kept == 4  # 1 model + 3 feasibility-only
        assert len(store.segment_paths()) == 1
        cache = QueryCache()
        DiskCacheStore(tmp_path / "cache").load_into(cache)
        assert cache.get_model(keys[0]) == (True, {X: 1})
        assert cache.get_feasible(keys[3]) is False

    def test_auto_compaction_bounds_segment_count(self, tmp_path):
        store = DiskCacheStore(tmp_path / "cache", auto_compact_segments=3)
        for i, key in enumerate(_keys(6)):
            store.record_feasible(key, True)
            store.flush()
        assert len(store.segment_paths()) <= 4

    def test_clear_removes_everything(self, tmp_path):
        keys = _keys(2)
        store = _store_with(tmp_path, feasible=[(k, True) for k in keys])
        assert store.clear() == 1
        assert store.segment_paths() == []
        report = DiskCacheStore(tmp_path / "cache").load_into(QueryCache())
        assert report.records_applied == 0

    def test_load_respects_entry_bound(self, tmp_path, caplog):
        keys = _keys(8)
        _store_with(tmp_path, feasible=[(k, True) for k in keys])
        cache = QueryCache()
        with caplog.at_level(logging.WARNING, logger="repro.solver.diskcache"):
            report = DiskCacheStore(tmp_path / "cache",
                                    max_load_entries=5).load_into(cache)
        assert any("in-memory bound" in record.getMessage()
                   for record in caplog.records)
        assert report.truncated
        assert report.records_applied == 5
        assert len(cache) == 5

    def test_verify_reports_without_attaching(self, tmp_path):
        keys = _keys(3)
        store = _store_with(tmp_path, feasible=[(k, True) for k in keys])
        report = store.verify()
        assert report.loaded_records == 3
        assert report.dropped_records == 0


class TestFraming:
    def test_scan_frames_empty_file(self):
        scan = scan_frames(b"")
        assert scan.damaged and scan.payloads == []

    def test_scan_frames_header_only(self):
        scan = scan_frames(HEADER)
        assert not scan.damaged
        assert scan.valid_end == len(HEADER)

    def test_record_spans_match_scan(self, tmp_path):
        keys = _keys(3)
        store = _store_with(tmp_path, feasible=[(k, True) for k in keys])
        spans = record_spans(store.segment_paths()[0])
        assert len(spans) == 3
        assert spans[0][0] == len(HEADER)
