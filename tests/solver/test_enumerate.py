"""Tests for exact model enumeration/counting."""

import pytest

from repro.errors import SolverError
from repro.solver.ast import and_, bv_const, bv_var, eq, ne, or_, ult
from repro.solver.enumerate import count_models, iter_models

X = bv_var("x", 8)
Y = bv_var("y", 8)


class TestCounting:
    def test_unconstrained_byte(self):
        assert count_models([], [X]) == 256

    def test_interval(self):
        assert count_models([X > 250], [X]) == 5

    def test_conjunction(self):
        assert count_models([X > 10, X < 14], [X]) == 3

    def test_disequality(self):
        assert count_models([ne(X, bv_const(0, 8))], [X]) == 255

    def test_two_variables(self):
        assert count_models([X < 2, Y < 3], [X, Y]) == 6

    def test_dependent_variables(self):
        assert count_models([eq(X, Y + 1), Y < 10], [X, Y]) == 10

    def test_disjunction(self):
        pred = or_(eq(X, bv_const(1, 8)), eq(X, bv_const(200, 8)))
        assert count_models([pred], [X]) == 2

    def test_unsat_counts_zero(self):
        assert count_models([X < 5, X > 9], [X]) == 0


class TestIterModels:
    def test_yields_exact_assignments(self):
        models = list(iter_models([X > 253], [X]))
        assert sorted(m[X] for m in models) == [254, 255]

    def test_missing_variables_rejected(self):
        with pytest.raises(SolverError):
            list(iter_models([ult(X, Y)], [X]))

    def test_limit_enforced(self):
        with pytest.raises(SolverError):
            list(iter_models([], [X], limit=10))

    def test_exactly_limit_models_enumerate_cleanly(self):
        """The limit trips only when a model *beyond* it exists: a space
        holding exactly ``limit`` models must enumerate without error."""
        models = list(iter_models([X > 253], [X], limit=2))
        assert sorted(m[X] for m in models) == [254, 255]

    def test_limit_one_with_single_model_ok(self):
        models = list(iter_models([eq(X, bv_const(9, 8))], [X], limit=1))
        assert [m[X] for m in models] == [9]

    def test_limit_raises_before_yielding_the_excess_model(self):
        seen = []
        with pytest.raises(SolverError):
            for model in iter_models([X > 250], [X], limit=3):
                seen.append(model[X])
        assert len(seen) == 3  # the 4th model triggered the error, unseen

    def test_count_models_at_exact_limit(self):
        assert count_models([X < 4], [X], limit=4) == 4

    def test_signed_range(self):
        models = list(iter_models([X.slt(0), X > 253], [X]))
        assert sorted(m[X] for m in models) == [254, 255]
