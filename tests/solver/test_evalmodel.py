"""Tests for concrete evaluation under models, including a differential
property test: evaluation must agree with construction-time constant folding.
"""

import pytest
from hypothesis import given, strategies as st

from repro.errors import SolverError
from repro.solver import ast
from repro.solver.ast import bool_var, bv_const, bv_var, ite, not_, or_, ult
from repro.solver.evalmodel import all_hold, evaluate, holds

X = bv_var("x", 8)
Y = bv_var("y", 8)


class TestEvaluate:
    def test_variable_lookup(self):
        assert evaluate(X, {X: 42}) == 42

    def test_missing_variable_raises(self):
        with pytest.raises(SolverError):
            evaluate(X, {})

    def test_arithmetic(self):
        assert evaluate(X + Y, {X: 200, Y: 100}) == 44

    def test_comparisons(self):
        assert evaluate(ult(X, Y), {X: 1, Y: 2}) == 1
        assert evaluate(X.slt(0), {X: 255}) == 1

    def test_ite_short_circuit(self):
        expr = ite(ult(X, bv_const(5, 8)), X + 1, X - 1)
        assert evaluate(expr, {X: 3}) == 4
        assert evaluate(expr, {X: 9}) == 8

    def test_bool_connectives(self):
        p, q = bool_var("p"), bool_var("q")
        assert evaluate(or_(p, q), {p: 0, q: 1}) == 1
        assert evaluate(not_(p), {p: 0}) == 1

    def test_width_ops(self):
        assert evaluate(ast.zext(X, 16) + 256, {X: 1}) == 257
        assert evaluate(ast.sext(X, 16), {X: 0xFF}) == 0xFFFF
        assert evaluate(ast.extract(X, 7, 4), {X: 0xAB}) == 0xA
        assert evaluate(ast.concat(X, Y), {X: 1, Y: 2}) == 0x0102


class TestHolds:
    def test_holds_requires_bool(self):
        with pytest.raises(SolverError):
            holds(X, {X: 1})

    def test_all_hold(self):
        constraints = [ult(X, Y), not_(ult(Y, X))]
        assert all_hold(constraints, {X: 1, Y: 2})
        assert not all_hold(constraints, {X: 2, Y: 1})


_BIN_OPS = ["add", "sub", "mul", "udiv", "urem", "bvand", "bvor", "bvxor",
            "shl", "lshr", "ashr"]


class TestAgreesWithFolding:
    @given(op=st.sampled_from(_BIN_OPS), a=st.integers(0, 255), b=st.integers(0, 255))
    def test_eval_matches_constant_fold(self, op, a, b):
        """Symbolic-then-evaluate equals fold-at-construction."""
        folded = getattr(ast, op)(bv_const(a, 8), bv_const(b, 8))
        symbolic = getattr(ast, op)(X, Y)
        assert evaluate(symbolic, {X: a, Y: b}) == folded.value

    @given(op=st.sampled_from(["eq", "ult", "ule", "slt", "sle"]),
           a=st.integers(0, 255), b=st.integers(0, 255))
    def test_comparison_eval_matches_fold(self, op, a, b):
        folded = getattr(ast, op)(bv_const(a, 8), bv_const(b, 8))
        symbolic = getattr(ast, op)(X, Y)
        assert evaluate(symbolic, {X: a, Y: b}) == int(folded.is_true)
