"""Tests for the incremental push/pop assertion stack.

The load-bearing property is *agreement*: at every stack depth, under any
push/pop interleaving, ``IncrementalSolver.check_current()`` must return
the same status a from-scratch ``Solver().check(stack)`` would. The
randomized suites drive exactly that, over constraint shapes spanning the
quick-sat path, the propagation-contradiction path and the full-search
fallback.
"""

import random

import pytest

from repro.errors import SolverError
from repro.solver import ast
from repro.solver.ast import bv_const, bv_var, eq, ne, not_, or_
from repro.solver.incremental import IncrementalSolver
from repro.solver.interval import Interval
from repro.solver.propagate import (
    TrailDomains,
    build_var_index,
    initial_domains,
    propagate_delta,
)
from repro.solver.solver import Solver

X = bv_var("x", 8)
Y = bv_var("y", 8)
Z = bv_var("z", 8)


def _scratch_status(stack):
    return Solver().check(list(stack)).status


class TestPushPop:
    def test_empty_stack_is_sat(self):
        inc = IncrementalSolver()
        result = inc.check_current()
        assert result.is_sat
        assert result.model == {}

    def test_push_narrows_then_pop_restores(self):
        inc = IncrementalSolver()
        inc.push(X < 10)
        assert inc.check_current().is_sat
        inc.push(X > 20)
        assert not inc.check_current().is_sat
        inc.pop()
        assert inc.check_current().is_sat
        inc.pop()
        assert inc.depth == 0

    def test_pop_empty_raises(self):
        with pytest.raises(SolverError):
            IncrementalSolver().pop()

    def test_push_requires_boolean(self):
        with pytest.raises(SolverError):
            IncrementalSolver().push(X + 1)

    def test_pushes_under_contradiction_stay_unsat(self):
        inc = IncrementalSolver()
        inc.push(X < 5)
        inc.push(X > 9)
        inc.push(Y < 3)  # stacked on an unsat prefix
        assert not inc.check_current().is_sat
        inc.pop()
        assert not inc.check_current().is_sat
        inc.pop()
        assert inc.check_current().is_sat

    def test_model_covers_all_variables(self):
        inc = IncrementalSolver()
        inc.push(eq(X, Y + 1))
        inc.push(Y < 10)
        result = inc.check_current()
        assert result.is_sat
        assert result.model[X] == (result.model[Y] + 1) % 256
        assert result.model[Y] < 10

    def test_definition_chain_resolved_without_fallback(self):
        inc = IncrementalSolver()
        inc.push(eq(Z, X + Y))
        inc.push(eq(X, bv_const(3, 8)))
        inc.push(Y > 100)
        result = inc.check_current()
        assert result.is_sat
        model = result.model
        assert model[Z] == (model[X] + model[Y]) % 256
        assert inc.solver.stats.incremental_fallbacks == 0
        assert inc.solver.stats.quick_sats > 0

    def test_quick_unsat_skips_full_solver(self):
        inc = IncrementalSolver()
        inc.push(X < 5)
        inc.push(X > 9)
        assert not inc.check_current().is_sat
        assert inc.solver.stats.quick_unsats == 1
        assert inc.solver.stats.incremental_fallbacks == 0


class TestAlign:
    def test_align_reuses_common_prefix(self):
        inc = IncrementalSolver()
        a, b, c, d = X < 10, Y < 10, Z < 10, X > 2
        inc.align((a, b, c))
        assert inc.depth == 3
        reused = inc.align((a, b, d))
        assert reused == 2
        assert inc.depth == 3
        assert inc.solver.stats.frames_reused == 2

    def test_align_to_empty_pops_everything(self):
        inc = IncrementalSolver()
        inc.align((X < 10, Y < 10))
        inc.align(())
        assert inc.depth == 0
        assert inc.check_current().is_sat

    def test_check_matches_scratch_after_alignment(self):
        inc = IncrementalSolver()
        stacks = [
            (X < 10,),
            (X < 10, eq(Y, X + 1)),
            (X < 10, eq(Y, X + 1), Y > 200),
            (X < 10, Y > 200),
            (eq(X, bv_const(7, 8)),),
        ]
        for stack in stacks:
            assert inc.check(stack).status == _scratch_status(stack)


def _conjunct_pool(rng):
    """Constraint shapes spanning every check_current code path."""
    consts = [bv_const(rng.randrange(256), 8) for _ in range(6)]
    vars_ = [X, Y, Z]
    pool = []
    for var in vars_:
        pool.append(var < consts[0].params[0] + 1)
        pool.append(var > consts[1].params[0] - 1)
        pool.append(eq(var, consts[2]))
        pool.append(ne(var, consts[3]))
    pool.append(eq(X, Y + consts[4].params[0]))
    pool.append(eq(Z, X + Y))
    pool.append(or_(eq(X, consts[0]), eq(X, consts[1])))
    pool.append(or_(X < consts[2].params[0] + 1, Y > consts[3].params[0]))
    pool.append(not_(or_(eq(Y, consts[4]), eq(Y, consts[5]))))
    pool.append(ast.ult(X, Y))
    return pool


class TestRandomizedAgreement:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_random_push_pop_agrees_with_scratch(self, seed):
        """Random interleaving: the incremental answer must equal the
        from-scratch answer after every single operation."""
        rng = random.Random(seed)
        pool = _conjunct_pool(rng)
        inc = IncrementalSolver()
        stack = []
        for _ in range(60):
            if stack and rng.random() < 0.4:
                stack.pop()
                inc.pop()
            else:
                conjunct = rng.choice(pool)
                stack.append(conjunct)
                inc.push(conjunct)
            assert inc.check_current().status == _scratch_status(stack)

    @pytest.mark.parametrize("seed", [10, 11])
    def test_agreement_at_every_depth_on_unwind(self, seed):
        """Build a deep stack, then pop to zero checking each depth."""
        rng = random.Random(seed)
        pool = _conjunct_pool(rng)
        stack = [rng.choice(pool) for _ in range(10)]
        inc = IncrementalSolver()
        for conjunct in stack:
            inc.push(conjunct)
        while True:
            assert inc.check_current().status == _scratch_status(stack)
            if not stack:
                break
            stack.pop()
            inc.pop()

    @pytest.mark.parametrize("seed", [20, 21])
    def test_sat_models_verify(self, seed):
        """Any SAT model the incremental layer returns satisfies the stack."""
        from repro.solver.evalmodel import all_hold

        rng = random.Random(seed)
        pool = _conjunct_pool(rng)
        inc = IncrementalSolver()
        stack = []
        for _ in range(40):
            if stack and rng.random() < 0.35:
                stack.pop()
                inc.pop()
            else:
                conjunct = rng.choice(pool)
                stack.append(conjunct)
                inc.push(conjunct)
            result = inc.check_current()
            if result.is_sat:
                assert all_hold(stack, result.model)


class TestTrailDomains:
    def test_undo_restores_exact_state(self):
        domains = TrailDomains({X: Interval(0, 255), Y: Interval(0, 255)})
        snapshot = dict(domains)
        mark = domains.mark()
        domains[X] = Interval(5, 10)
        domains[Y] = Interval(1, 2)
        domains[Z] = Interval(0, 255)  # fresh key must vanish on undo
        domains.undo_to(mark)
        assert dict(domains) == snapshot
        assert Z not in domains

    def test_nested_marks_unwind_independently(self):
        domains = TrailDomains({X: Interval(0, 255)})
        outer = domains.mark()
        domains[X] = Interval(0, 100)
        inner = domains.mark()
        domains[X] = Interval(0, 10)
        domains[Y] = Interval(3, 3)
        domains.undo_to(inner)
        assert domains[X] == Interval(0, 100)
        assert Y not in domains
        domains.undo_to(outer)
        assert domains[X] == Interval(0, 255)

    def test_repeated_writes_unwind_to_original(self):
        domains = TrailDomains({X: Interval(0, 255)})
        mark = domains.mark()
        for hi in (100, 50, 10, 4):
            domains[X] = Interval(0, hi)
        domains.undo_to(mark)
        assert domains[X] == Interval(0, 255)

    def test_propagation_through_trail_restores_domains_exactly(self):
        constraints = [X < 10, eq(Y, X + 1), ast.ult(Z, Y)]
        domains = TrailDomains(initial_domains(constraints))
        index = build_var_index(constraints)
        baseline = dict(domains)
        mark = domains.mark()
        assert propagate_delta(domains, index, constraints)
        assert domains[X] == Interval(0, 9)  # actually narrowed
        domains.undo_to(mark)
        assert dict(domains) == baseline

    def test_contradiction_leaves_recoverable_trail(self):
        constraints = [X < 5, X > 9]
        domains = TrailDomains(initial_domains(constraints))
        index = build_var_index(constraints)
        baseline = dict(domains)
        mark = domains.mark()
        assert not propagate_delta(domains, index, constraints)
        domains.undo_to(mark)
        assert dict(domains) == baseline

    @pytest.mark.parametrize("seed", [30, 31, 32])
    def test_randomized_nested_undo(self, seed):
        """Random interleaved propagation rounds over nested marks."""
        rng = random.Random(seed)
        pool = _conjunct_pool(rng)
        constraints = rng.sample(pool, 6)
        domains = TrailDomains(initial_domains(constraints))
        index = build_var_index(constraints)
        snapshots = []
        for constraint in constraints:
            snapshots.append((domains.mark(), dict(domains)))
            propagate_delta(domains, index, [constraint])
        for mark, snapshot in reversed(snapshots):
            domains.undo_to(mark)
            assert dict(domains) == snapshot
