"""Unit and property tests for interval arithmetic soundness.

Soundness is the load-bearing property: for every operation and every pair
of concrete values drawn from the input intervals, the concrete result must
land inside the computed output interval.
"""

import pytest
from hypothesis import given, strategies as st

from repro.errors import SolverError
from repro.solver import interval as iv
from repro.solver.ast import fold_binary
from repro.solver.interval import Interval
from repro.solver.sorts import bitvec_sort

WIDTH = 8
SORT = bitvec_sort(WIDTH)


def intervals(width=WIDTH):
    mask = (1 << width) - 1
    return st.tuples(st.integers(0, mask), st.integers(0, mask)).map(
        lambda pair: Interval(min(pair), max(pair)))


class TestBasics:
    def test_malformed_interval_rejected(self):
        with pytest.raises(SolverError):
            Interval(5, 3)
        with pytest.raises(SolverError):
            Interval(-1, 3)

    def test_size_and_singleton(self):
        assert Interval(3, 3).is_singleton
        assert Interval(0, 255).size == 256

    def test_intersect(self):
        assert Interval(0, 10).intersect(Interval(5, 20)) == Interval(5, 10)
        assert Interval(0, 4).intersect(Interval(5, 9)) is None

    def test_hull(self):
        assert Interval(0, 2).hull(Interval(9, 11)) == Interval(0, 11)


_BINARY_OPS = ["add", "sub", "mul", "udiv", "urem", "bvand", "bvor", "bvxor",
               "shl", "lshr", "ashr"]


class TestTransferSoundness:
    @pytest.mark.parametrize("op", _BINARY_OPS)
    @given(data=st.data())
    def test_binary_op_sound(self, op, data):
        a = data.draw(intervals())
        b = data.draw(intervals())
        out = getattr(iv, op)(a, b, WIDTH)
        x = data.draw(st.integers(a.lo, a.hi))
        y = data.draw(st.integers(b.lo, b.hi))
        concrete = fold_binary(op, x, y, SORT)
        assert out.contains(concrete), f"{op}({x},{y})={concrete} outside {out}"

    @given(data=st.data())
    def test_neg_sound(self, data):
        a = data.draw(intervals())
        out = iv.neg(a, WIDTH)
        x = data.draw(st.integers(a.lo, a.hi))
        assert out.contains(SORT.wrap(-x))

    @given(data=st.data())
    def test_bvnot_sound(self, data):
        a = data.draw(intervals())
        out = iv.bvnot(a, WIDTH)
        x = data.draw(st.integers(a.lo, a.hi))
        assert out.contains(SORT.wrap(~x))

    @given(data=st.data())
    def test_sext_sound(self, data):
        a = data.draw(intervals())
        out = iv.sext(a, WIDTH, 16)
        x = data.draw(st.integers(a.lo, a.hi))
        wide = bitvec_sort(16)
        assert out.contains(wide.from_signed(SORT.to_signed(x)))

    @given(data=st.data())
    def test_concat_sound(self, data):
        a = data.draw(intervals())
        b = data.draw(intervals())
        out = iv.concat(a, b, WIDTH)
        x = data.draw(st.integers(a.lo, a.hi))
        y = data.draw(st.integers(b.lo, b.hi))
        assert out.contains((x << WIDTH) | y)


class TestCompare:
    def test_eq_decides_disjoint(self):
        assert iv.compare("eq", Interval(0, 4), Interval(5, 9), WIDTH) == iv.TRI_FALSE

    def test_eq_decides_equal_singletons(self):
        assert iv.compare("eq", Interval(7, 7), Interval(7, 7), WIDTH) == iv.TRI_TRUE

    def test_eq_unknown_on_overlap(self):
        assert iv.compare("eq", Interval(0, 9), Interval(5, 20), WIDTH) == iv.TRI_UNKNOWN

    def test_ult_decides(self):
        assert iv.compare("ult", Interval(0, 4), Interval(5, 9), WIDTH) == iv.TRI_TRUE
        assert iv.compare("ult", Interval(9, 12), Interval(3, 9), WIDTH) == iv.TRI_FALSE

    def test_signed_compare_crossing_boundary_is_unknown(self):
        crossing = Interval(100, 200)  # crosses 127/128 signed boundary
        assert iv.compare("slt", crossing, Interval(0, 0), WIDTH) == iv.TRI_UNKNOWN

    def test_signed_compare_negative_range(self):
        negative = Interval(128, 255)  # [-128, -1] signed
        positive = Interval(0, 127)
        assert iv.compare("slt", negative, positive, WIDTH) == iv.TRI_TRUE

    @given(data=st.data())
    def test_compare_sound(self, data):
        op = data.draw(st.sampled_from(["eq", "ult", "ule", "slt", "sle"]))
        a = data.draw(intervals())
        b = data.draw(intervals())
        outcome = iv.compare(op, a, b, WIDTH)
        if outcome == iv.TRI_UNKNOWN:
            return
        from repro.solver.ast import fold_comparison

        x = data.draw(st.integers(a.lo, a.hi))
        y = data.draw(st.integers(b.lo, b.hi))
        assert int(fold_comparison(op, x, y, SORT)) == outcome


class TestSignedBounds:
    def test_positive_range(self):
        assert iv.signed_bounds(Interval(0, 100), WIDTH) == (0, 100)

    def test_negative_range(self):
        assert iv.signed_bounds(Interval(128, 255), WIDTH) == (-128, -1)

    def test_crossing_returns_none(self):
        assert iv.signed_bounds(Interval(100, 200), WIDTH) is None
