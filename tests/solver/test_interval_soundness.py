"""Interval arithmetic soundness: forward images must cover reality.

For every binary/unary operator, the interval of the result must contain
the concrete result for any operands drawn from the input intervals.
Unsound intervals would silently prune satisfiable branches in the
engine, so this family of properties guards the whole stack.
"""

from hypothesis import given, settings, strategies as st

from repro.solver import interval as iv
from repro.solver.ast import fold_binary
from repro.solver.interval import Interval
from repro.solver.sorts import bitvec_sort

WIDTH = 8
SORT = bitvec_sort(WIDTH)

BOUND = st.integers(0, 255)


def _interval(lo: int, hi: int) -> Interval:
    return Interval(min(lo, hi), max(lo, hi))


BINARY_OPS = ["add", "sub", "mul", "udiv", "urem", "bvand", "bvor",
              "bvxor", "shl", "lshr", "ashr"]


@settings(max_examples=200, deadline=None)
@given(op=st.sampled_from(BINARY_OPS), a_lo=BOUND, a_hi=BOUND,
       b_lo=BOUND, b_hi=BOUND, a_pick=st.floats(0, 1), b_pick=st.floats(0, 1))
def test_binary_forward_images_sound(op, a_lo, a_hi, b_lo, b_hi,
                                     a_pick, b_pick):
    a_iv = _interval(a_lo, a_hi)
    b_iv = _interval(b_lo, b_hi)
    a = a_iv.lo + int(a_pick * (a_iv.hi - a_iv.lo))
    b = b_iv.lo + int(b_pick * (b_iv.hi - b_iv.lo))
    result_iv = getattr(iv, op)(a_iv, b_iv, WIDTH)
    concrete = fold_binary(op, a, b, SORT)
    assert result_iv.contains(concrete), (op, a, b, result_iv)


class TestBitwiseRegressions:
    """Deterministic edge cases for the transfer functions that carry
    nontrivial bounds reasoning (``urem`` strictness, ``bvor``/``bvand``
    envelope bounds). Hypothesis covers the space above; these pin the
    exact corners a future "tightening" could silently break."""

    def test_urem_nonzero_divisor_is_strictly_below_divisor(self):
        # x % [3, 8] < 8 regardless of x.
        result = iv.urem(Interval(0, 255), Interval(3, 8), WIDTH)
        assert result.hi == 7
        for a in (0, 7, 8, 100, 255):
            for b in (3, 5, 8):
                assert result.contains(fold_binary("urem", a, b, SORT))

    def test_urem_small_dividend_keeps_dividend_bound(self):
        # x in [0, 4] % anything stays <= 4.
        result = iv.urem(Interval(0, 4), Interval(10, 200), WIDTH)
        assert result.hi == 4

    def test_urem_possible_zero_divisor_keeps_identity(self):
        # urem(a, 0) == a in SMT-LIB semantics, so the dividend bound
        # must survive when 0 is in the divisor domain.
        result = iv.urem(Interval(200, 250), Interval(0, 8), WIDTH)
        assert result.contains(fold_binary("urem", 250, 0, SORT))  # == 250

    def test_urem_singleton_divisor_one(self):
        result = iv.urem(Interval(0, 255), Interval(1, 1), WIDTH)
        assert result == Interval(0, 0)

    def test_bvand_bounded_by_smaller_operand(self):
        result = iv.bvand(Interval(0, 12), Interval(0, 255), WIDTH)
        assert result.hi == 12
        assert result.contains(fold_binary("bvand", 12, 255, SORT))

    def test_bvand_can_reach_zero_even_with_nonzero_inputs(self):
        # lo must stay 0: 0b01 & 0b10 == 0.
        result = iv.bvand(Interval(1, 2), Interval(1, 2), WIDTH)
        assert result.lo == 0
        assert result.contains(fold_binary("bvand", 1, 2, SORT))

    def test_bvor_lower_bound_is_operand_max(self):
        # a | b >= max(a, b), so lo == max of the operand los.
        result = iv.bvor(Interval(4, 6), Interval(1, 2), WIDTH)
        assert result.lo == 4
        assert result.contains(fold_binary("bvor", 4, 1, SORT))

    def test_bvor_upper_bound_covers_bit_mixing(self):
        # 5 | 2 == 7 exceeds max(a.hi, b.hi); the all-ones cap must cover it.
        result = iv.bvor(Interval(5, 5), Interval(2, 2), WIDTH)
        assert result.contains(fold_binary("bvor", 5, 2, SORT))
        assert result.hi >= 7


@settings(max_examples=100, deadline=None)
@given(lo=BOUND, hi=BOUND, pick=st.floats(0, 1))
def test_neg_and_bvnot_sound(lo, hi, pick):
    domain = _interval(lo, hi)
    value = domain.lo + int(pick * (domain.hi - domain.lo))
    assert iv.neg(domain, WIDTH).contains((-value) & 0xFF)
    assert iv.bvnot(domain, WIDTH).contains((~value) & 0xFF)


@settings(max_examples=100, deadline=None)
@given(lo=BOUND, hi=BOUND, pick=st.floats(0, 1),
       hi_bit=st.integers(0, 7), lo_bit=st.integers(0, 7))
def test_extract_sound(lo, hi, pick, hi_bit, lo_bit):
    if lo_bit > hi_bit:
        hi_bit, lo_bit = lo_bit, hi_bit
    domain = _interval(lo, hi)
    value = domain.lo + int(pick * (domain.hi - domain.lo))
    result = iv.extract(domain, hi_bit, lo_bit, WIDTH)
    mask = (1 << (hi_bit - lo_bit + 1)) - 1
    assert result.contains((value >> lo_bit) & mask)


@settings(max_examples=100, deadline=None)
@given(hi_lo=BOUND, hi_hi=BOUND, lo_lo=BOUND, lo_hi=BOUND,
       p1=st.floats(0, 1), p2=st.floats(0, 1))
def test_concat_sound(hi_lo, hi_hi, lo_lo, lo_hi, p1, p2):
    hi_iv = _interval(hi_lo, hi_hi)
    lo_iv = _interval(lo_lo, lo_hi)
    hi_val = hi_iv.lo + int(p1 * (hi_iv.hi - hi_iv.lo))
    lo_val = lo_iv.lo + int(p2 * (lo_iv.hi - lo_iv.lo))
    result = iv.concat(hi_iv, lo_iv, WIDTH)
    assert result.contains((hi_val << WIDTH) | lo_val)


@settings(max_examples=120, deadline=None)
@given(op=st.sampled_from(["eq", "ult", "ule", "slt", "sle"]),
       a_lo=BOUND, a_hi=BOUND, b_lo=BOUND, b_hi=BOUND,
       p1=st.floats(0, 1), p2=st.floats(0, 1))
def test_compare_tri_values_sound(op, a_lo, a_hi, b_lo, b_hi, p1, p2):
    from repro.solver.ast import fold_comparison
    from repro.solver.interval import TRI_FALSE, TRI_TRUE

    a_iv = _interval(a_lo, a_hi)
    b_iv = _interval(b_lo, b_hi)
    a = a_iv.lo + int(p1 * (a_iv.hi - a_iv.lo))
    b = b_iv.lo + int(p2 * (b_iv.hi - b_iv.lo))
    outcome = iv.compare(op, a_iv, b_iv, WIDTH)
    concrete = fold_comparison(op, a, b, SORT)
    if outcome == TRI_TRUE:
        assert concrete
    elif outcome == TRI_FALSE:
        assert not concrete
    # TRI_UNKNOWN: nothing to check — always sound.
