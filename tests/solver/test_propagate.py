"""Tests for interval propagation: narrowing quality and soundness.

Propagation may be imprecise but must never discard a satisfiable
assignment; the property test checks that any brute-force model stays
inside the propagated domains.
"""

import itertools

from hypothesis import given, settings, strategies as st

from repro.solver import ast
from repro.solver.ast import bv_const, bv_var, eq, ne, not_, or_, ult, zext
from repro.solver.evalmodel import all_hold
from repro.solver.interval import Interval
from repro.solver.propagate import initial_domains, propagate

X = bv_var("x", 8)
Y = bv_var("y", 8)


def _run(constraints):
    return propagate(list(constraints), initial_domains(constraints))


class TestNarrowing:
    def test_upper_bound(self):
        domains = _run([X < 10])
        assert domains[X] == Interval(0, 9)

    def test_lower_bound(self):
        domains = _run([X > 10])
        assert domains[X] == Interval(11, 255)

    def test_equality_with_constant(self):
        domains = _run([eq(X, bv_const(7, 8))])
        assert domains[X] == Interval(7, 7)

    def test_equality_links_variables(self):
        domains = _run([eq(X, Y), Y < 5])
        assert domains[X] == Interval(0, 4)

    def test_add_offset_inverted(self):
        domains = _run([eq(X + 10, bv_const(12, 8))])
        assert domains[X] == Interval(2, 2)

    def test_zext_pushed_through(self):
        wide = bv_var("w", 16)
        domains = _run([eq(zext(X, 16), wide), wide > 200])
        assert domains[X].lo >= 201
        assert domains[wide].hi <= 255

    def test_contradiction_detected(self):
        assert _run([X < 5, X > 9]) is None

    def test_edge_disequality(self):
        domains = _run([ne(X, bv_const(0, 8)), ne(X, bv_const(255, 8))])
        assert domains[X] == Interval(1, 254)

    def test_signed_negative(self):
        domains = _run([X.slt(0)])
        assert domains[X] == Interval(128, 255)

    def test_or_with_single_open_arm(self):
        pred = or_(ult(X, bv_const(0, 8)), eq(X, bv_const(9, 8)))
        domains = _run([pred])
        assert domains[X] == Interval(9, 9)

    def test_or_membership_narrows_to_hull(self):
        """All arms bound the same variable: it must lie in their hull."""
        pred = or_(eq(X, bv_const(3, 8)), eq(X, bv_const(17, 8)))
        domains = _run([pred])
        assert domains[X] == Interval(3, 17)

    def test_or_mixed_comparisons_same_variable(self):
        pred = or_(ult(X, bv_const(4, 8)), eq(X, bv_const(200, 8)))
        domains = _run([pred])
        assert domains[X] == Interval(0, 200)

    def test_or_hull_intersects_existing_domain(self):
        pred = or_(eq(X, bv_const(3, 8)), eq(X, bv_const(17, 8)))
        domains = _run([pred, X > 10])
        assert domains[X] == Interval(17, 17)

    def test_or_over_distinct_variables_stays_wide(self):
        pred = or_(eq(X, bv_const(3, 8)), eq(Y, bv_const(4, 8)))
        domains = _run([pred])
        assert domains[X] == Interval(0, 255)
        assert domains[Y] == Interval(0, 255)


class TestSoundness:
    @settings(max_examples=200, deadline=None)
    @given(
        bounds=st.lists(
            st.tuples(st.sampled_from(["ult", "ule", "eq", "slt"]),
                      st.integers(0, 255), st.booleans()),
            min_size=1, max_size=4))
    def test_no_model_lost(self, bounds):
        """Every brute-force model must stay within propagated domains."""
        constraints = []
        for op, value, negate in bounds:
            pred = getattr(ast, op)(X, bv_const(value, 8))
            constraints.append(not_(pred) if negate else pred)
        domains = propagate(constraints, initial_domains(constraints))
        models = [v for v in range(256) if all_hold(constraints, {X: v})]
        if domains is None:
            assert models == []
            return
        # Constant folding can remove X entirely (e.g. ult(X, 0) -> false);
        # a missing domain means the variable is unconstrained.
        domain = domains.get(X, Interval(0, 255))
        for value in models:
            assert domain.contains(value)
