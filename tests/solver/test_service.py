"""Tests for the batched solver service (serial + worker-pool backends).

The load-bearing properties:

* **agreement** — every batched answer equals what a from-scratch
  ``Solver().check`` returns for the same query, at any worker count;
* **order** — results come back in input order regardless of chunking;
* **stats** — per-worker counters merge deterministically, and
  :class:`SolverStats` aggregation is a plain field-wise sum.
"""

import random

import pytest

from repro.errors import SolverError
from repro.solver import ast
from repro.solver.ast import bv_const, bv_var, eq, ne
from repro.solver.enumerate import iter_models
from repro.solver.incremental import IncrementalSolver
from repro.solver.interval import Interval
from repro.solver.service import SolverService, _chunk
from repro.solver.solver import Solver, SolverStats

X = bv_var("x", 8)
Y = bv_var("y", 8)
Z = bv_var("z", 8)


def _random_query(rng: random.Random) -> tuple:
    """A small random conjunction spanning sat, unsat and fallback shapes."""
    variables = [X, Y, Z]
    conjuncts = []
    for _ in range(rng.randint(1, 4)):
        var = rng.choice(variables)
        value = bv_const(rng.randint(0, 255), 8)
        kind = rng.randrange(5)
        if kind == 0:
            conjuncts.append(eq(var, value))
        elif kind == 1:
            conjuncts.append(ne(var, value))
        elif kind == 2:
            conjuncts.append(ast.ult(var, value))
        elif kind == 3:
            conjuncts.append(ast.ugt(var, value))
        else:
            other = rng.choice([v for v in variables if v is not var])
            conjuncts.append(eq(var, other + rng.randint(0, 255)))
    return tuple(conjuncts)


class TestSerialBackend:
    def test_check_batch_matches_scratch(self):
        service = SolverService()
        queries = [(ast.ult(X, bv_const(4, 8)),),
                   (ast.ult(X, bv_const(4, 8)), ast.ugt(X, bv_const(9, 8))),
                   (eq(Y, X + 1), ast.ugt(X, bv_const(250, 8)))]
        results = service.check_batch(queries)
        assert [r.status for r in results] == [
            Solver().check(list(q)).status for q in queries]

    def test_probe_batch_feasibility(self):
        service = SolverService()
        prefix = (ast.ult(X, bv_const(10, 8)),)
        probes = [(eq(X, bv_const(3, 8)),),
                  (eq(X, bv_const(30, 8)),),
                  (ne(X, bv_const(200, 8)),)]
        assert service.probe_batch(prefix, probes) == [True, False, True]

    def test_serial_probes_share_one_frame_stack(self):
        """Satellite property: all serial callers ride one IncrementalSolver."""
        service = SolverService()
        prefix = (ast.ult(X, bv_const(10, 8)),)
        service.probe_batch(prefix, [(eq(X, bv_const(1, 8)),)])
        before = service.solver.stats.frames_reused
        service.probe_batch(prefix, [(eq(X, bv_const(2, 8)),)])
        # The second batch re-poses the same prefix: its frame is reused,
        # not re-propagated.
        assert service.solver.stats.frames_reused > before

    def test_iter_models_batch(self):
        service = SolverService()
        specs = [((ast.ult(X, bv_const(3, 8)),), (X,)),
                 ((eq(Y, bv_const(7, 8)),), (Y,))]
        models = service.iter_models_batch(specs)
        assert [m[X] for m in models[0]] == [0, 1, 2]
        assert [m[Y] for m in models[1]] == [7]

    def test_empty_batches(self):
        service = SolverService()
        assert service.check_batch([]) == []
        assert service.probe_batch((ast.ult(X, bv_const(4, 8)),), []) == []
        assert service.iter_models_batch([]) == []

    def test_invalid_worker_count(self):
        with pytest.raises(SolverError):
            SolverService(workers=0)


@pytest.fixture(scope="module")
def pool():
    with SolverService(workers=2) as service:
        yield service


class TestPoolBackend:
    def test_check_batch_matches_scratch(self, pool):
        rng = random.Random(20140301)
        queries = [_random_query(rng) for _ in range(24)]
        results = pool.check_batch(queries)
        for query, result in zip(queries, results):
            scratch = Solver().check(list(query))
            assert result.status == scratch.status, query
            if result.is_sat:
                # The model is complete and actually satisfies the query.
                from repro.solver.evalmodel import all_hold
                assert all_hold(list(query), dict(result.model))

    def test_results_in_input_order(self, pool):
        # Alternate sat/unsat so any chunk mixup flips an answer.
        queries = []
        for i in range(17):
            if i % 2 == 0:
                queries.append((eq(X, bv_const(i, 8)),))
            else:
                queries.append((eq(X, bv_const(i, 8)),
                                ne(X, bv_const(i, 8))))
        statuses = [r.is_sat for r in pool.check_batch(queries)]
        assert statuses == [i % 2 == 0 for i in range(17)]

    def test_probe_batch_matches_serial(self, pool):
        serial = SolverService()
        prefix = (ast.ult(X, bv_const(50, 8)), ast.ugt(Y, bv_const(5, 8)))
        probes = [(eq(X, bv_const(v, 8)),) for v in (0, 49, 50, 120, 3)]
        assert (pool.probe_batch(prefix, probes)
                == serial.probe_batch(prefix, probes))

    def test_iter_models_batch_matches_serial(self, pool):
        specs = [((ast.ult(X, bv_const(4, 8)),), (X,)),
                 ((ast.ult(Y, bv_const(2, 8)), ne(Y, bv_const(0, 8))), (Y,)),
                 ((eq(Z, bv_const(9, 8)),), (Z,))]
        expected = [list(iter_models(c, v)) for c, v in specs]
        assert pool.iter_models_batch(specs) == expected

    def test_worker_stats_merged_on_join(self, pool):
        before = pool.stats.copy()
        queries = [(eq(X, bv_const(i, 8)),) for i in range(8)]
        pool.check_batch(queries)
        delta = pool.stats.delta_since(before)
        assert delta.queries == 8
        assert delta.sat_answers == 8
        assert delta.frames_pushed > 0

    def test_models_never_served_from_canonical_cache(self, pool):
        # Two canonically-equal but raw-distinct queries: each must get a
        # model computed from its own stack, so witnesses cannot depend on
        # which chunk (or worker) a query lands on.
        q1 = (ast.ult(X, bv_const(10, 8)), eq(Y, bv_const(3, 8)))
        q2 = (eq(Y, bv_const(3, 8)), ast.ult(X, bv_const(10, 8)))
        r1, r2 = pool.check_batch([q1, q2])
        assert r1.model == r2.model  # pure function of the constraint set


class TestChunking:
    def test_chunks_are_contiguous_and_cover(self):
        items = list(range(11))
        chunks = _chunk(items, 4)
        assert [len(c) for c in chunks] == [3, 3, 3, 2]
        assert [x for chunk in chunks for x in chunk] == items

    def test_fewer_items_than_workers(self):
        assert _chunk([1], 8) == [[1]]


class TestSolverStatsAggregation:
    def test_merge_sums_every_field(self):
        a = SolverStats(queries=3, cache_hits=5, cache_misses=1,
                        propagation_seconds=0.25, frames_pushed=7)
        b = SolverStats(queries=2, cache_hits=1, cache_misses=3,
                        propagation_seconds=0.5, frames_pushed=2)
        a += b
        assert a.queries == 5
        assert a.cache_hits == 6
        assert a.cache_misses == 4
        assert a.frames_pushed == 9
        assert a.propagation_seconds == pytest.approx(0.75)
        # hit rate stays consistent with the merged counters
        assert a.cache_hit_rate == pytest.approx(0.6)

    def test_merge_order_independent_for_counters(self):
        parts = [SolverStats(queries=i, cache_hits=2 * i) for i in range(5)]
        forward = SolverStats()
        for part in parts:
            forward += part
        backward = SolverStats()
        for part in reversed(parts):
            backward += part
        assert forward == backward

    def test_copy_is_independent(self):
        stats = SolverStats(queries=4)
        snapshot = stats.copy()
        stats.queries += 10
        assert snapshot.queries == 4
        assert stats.delta_since(snapshot).queries == 10

    def test_hit_rate_zero_when_unused(self):
        assert SolverStats().cache_hit_rate == 0.0


class TestSeededFallback:
    """The from-scratch fallback starts from the frame stack's fixpoint."""

    def test_seed_domains_narrow_the_model(self):
        constraints = [ast.ult(X, bv_const(100, 8))]
        seeded = Solver().check(constraints,
                                seed_domains={X: Interval(40, 60)})
        assert seeded.is_sat
        assert 40 <= seeded.model[X] <= 60

    def test_seeds_for_absent_variables_are_ignored(self):
        result = Solver().check([eq(X, bv_const(3, 8))],
                                seed_domains={Y: Interval(1, 2)})
        assert result.is_sat
        assert result.model[X] == 3

    def test_incremental_fallback_agrees_with_scratch(self):
        # A disjunction over two variables defeats the quick-sat candidate
        # (lower bounds violate it), forcing the seeded fallback path.
        rng = random.Random(7)
        for _ in range(50):
            stack = [_random_query(rng) for _ in range(rng.randint(1, 3))]
            flat = tuple(c for q in stack for c in q)
            disjunct = ast.or_(eq(X, bv_const(rng.randint(1, 255), 8)),
                               eq(Y, bv_const(rng.randint(1, 255), 8)))
            query = flat + (disjunct,)
            inc = IncrementalSolver()
            result = inc.check(query)
            scratch = Solver().check(list(query))
            assert result.status == scratch.status, query


class TestAsyncSubmit:
    """submit_* futures: same answers as the blocking calls, stats folded
    exactly once, and overlap-friendly single-item dispatch."""

    def test_serial_submit_is_eagerly_complete(self):
        service = SolverService()
        future = service.submit_check_batch([(ast.ult(X, bv_const(4, 8)),)])
        assert future.done
        assert [r.status for r in future.result()] == ["sat"]

    def test_pool_submit_matches_blocking_call(self, pool):
        rng = random.Random(20140302)
        queries = [_random_query(rng) for _ in range(16)]
        future = pool.submit_check_batch(queries)
        blocking = pool.check_batch(queries)
        async_results = future.result()
        assert [r.status for r in async_results] == \
            [r.status for r in blocking]
        assert [r.model for r in async_results] == \
            [r.model for r in blocking]

    def test_pool_submit_probe_matches_blocking_call(self, pool):
        prefix = (ast.ult(X, bv_const(100, 8)),)
        probes = [(eq(X, bv_const(v, 8)),) for v in (1, 99, 100, 200, 50)]
        future = pool.submit_probe_batch(prefix, probes)
        assert future.result() == pool.probe_batch(prefix, probes)

    def test_single_item_parallel_submit_dispatches(self, pool):
        """Async submit ships even a lone query to the pool — that is the
        overlap the caller asked for."""
        future = pool.submit_check_batch([(eq(X, bv_const(7, 8)),)])
        result = future.result()
        assert len(result) == 1 and result[0].is_sat
        assert result[0].model[X] == 7

    def test_stats_folded_exactly_once(self, pool):
        before = pool.stats.copy()
        future = pool.submit_check_batch(
            [(eq(X, bv_const(v, 8)),) for v in range(8)])
        future.result()
        after_first = pool.stats.copy()
        assert after_first.queries > before.queries
        future.result()  # joining again must not re-fold the deltas
        assert pool.stats.queries == after_first.queries

    def test_interleaved_futures_resolve_in_any_order(self, pool):
        first = pool.submit_check_batch(
            [(eq(X, bv_const(v, 8)),) for v in (1, 2, 3)])
        second = pool.submit_check_batch(
            [(eq(Y, bv_const(v, 8)),) for v in (4, 5)])
        # Join out of submit order: answers must still match their batch.
        assert [r.model[Y] for r in second.result()] == [4, 5]
        assert [r.model[X] for r in first.result()] == [1, 2, 3]


class TestCloseReentrancy:
    """close() must leave the service reusable (ISSUE 4 satellite)."""

    def test_batches_work_again_after_close(self):
        service = SolverService(workers=2)
        queries = [(eq(X, bv_const(v, 8)),) for v in (3, 9, 250)]
        try:
            first = service.check_batch(queries)
            service.close()
            second = service.check_batch(queries)  # restarts the pool lazily
            assert [r.status for r in first] == [r.status for r in second]
            assert [r.model for r in first] == [r.model for r in second]
        finally:
            service.close()

    def test_close_is_idempotent(self):
        service = SolverService(workers=2)
        service.check_batch([(eq(X, bv_const(1, 8)),),
                             (eq(X, bv_const(2, 8)),)])
        service.close()
        service.close()

    def test_stale_future_rejected_after_close(self):
        service = SolverService(workers=2)
        try:
            future = service.submit_check_batch(
                [(eq(X, bv_const(v, 8)),) for v in (1, 2)])
            service.close()
            with pytest.raises(SolverError, match="stale"):
                future.result()
        finally:
            service.close()

    def test_serial_service_close_is_noop(self):
        service = SolverService()
        service.close()
        assert service.probe_batch((), [(eq(X, bv_const(5, 8)),)]) == [True]
