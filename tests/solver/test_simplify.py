"""Tests for the canonicalization pass (:mod:`repro.solver.simplify`)."""

from hypothesis import given, settings, strategies as st

from repro.solver import ast
from repro.solver.ast import (
    FALSE,
    TRUE,
    and_,
    bool_var,
    bv_const,
    bv_var,
    eq,
    ne,
    not_,
    or_,
    ule,
    ult,
)
from repro.solver.evalmodel import evaluate
from repro.solver.simplify import canonical_constraint_set, canonicalize

X = bv_var("x", 8)
Y = bv_var("y", 8)
Z = bv_var("z", 8)
P = bool_var("p")
Q = bool_var("q")


class TestCommutativeSorting:
    def test_add_operand_order_collapses(self):
        assert canonicalize(X + Y) is canonicalize(Y + X)

    def test_association_order_collapses(self):
        assert canonicalize((X + Y) + Z) is canonicalize(X + (Y + Z))
        assert canonicalize((X + Y) + Z) is canonicalize((Z + X) + Y)

    def test_bitwise_chains_collapse(self):
        assert canonicalize((X & Y) & Z) is canonicalize(Z & (Y & X))
        assert canonicalize((X | Y) | Z) is canonicalize((Z | X) | Y)
        assert canonicalize(X ^ Y) is canonicalize(Y ^ X)

    def test_constants_stay_on_the_right(self):
        canon = canonicalize(bv_const(3, 8) + X)
        assert canon.op == "add"
        assert canon.args[1].is_const

    def test_eq_operand_order_collapses(self):
        assert canonicalize(eq(X, Y)) is canonicalize(eq(Y, X))

    def test_boolean_connective_order_collapses(self):
        assert canonicalize(and_(P, Q)) is canonicalize(and_(Q, P))
        assert canonicalize(or_(P, Q)) is canonicalize(or_(Q, P))

    def test_checksum_chains_cancel_across_association(self):
        """The shape that matters for the Achilles wire equalities."""
        parts = [bv_var(f"b{i}", 8) for i in range(8)]
        left_fold = parts[0]
        for part in parts[1:]:
            left_fold = left_fold + part
        right_fold = parts[-1]
        for part in reversed(parts[:-1]):
            right_fold = part + right_fold
        assert canonicalize(eq(left_fold, right_fold)).is_true


class TestNegatedComparisons:
    def test_not_ult_flips_to_ule(self):
        canon = canonicalize(not_(ult(X, Y)))
        assert canon.op == "ule"
        assert canon.args == (Y, X)

    def test_not_ule_flips_to_ult(self):
        assert canonicalize(not_(ule(X, Y))) is canonicalize(ult(Y, X))

    def test_not_signed_comparisons_flip(self):
        assert canonicalize(not_(X.slt(Y))) is canonicalize(Y.sle(X))
        assert canonicalize(not_(X.sle(Y))) is canonicalize(Y.slt(X))


class TestTrivialComparisons:
    def test_ult_one_becomes_eq_zero(self):
        assert canonicalize(ult(X, bv_const(1, 8))) is eq(X, bv_const(0, 8))

    def test_ule_zero_becomes_eq_zero(self):
        assert canonicalize(ule(X, bv_const(0, 8))) is eq(X, bv_const(0, 8))

    def test_ule_max_is_true(self):
        assert canonicalize(ule(X, bv_const(255, 8))).is_true

    def test_ult_below_max_becomes_ne(self):
        assert canonicalize(ult(X, bv_const(255, 8))) is canonicalize(
            ne(X, bv_const(255, 8)))

    def test_max_ult_anything_is_false(self):
        assert canonicalize(ult(bv_const(255, 8), X)).is_false


_LEAF = st.sampled_from([X, Y, Z, bv_const(0, 8), bv_const(1, 8),
                         bv_const(17, 8), bv_const(255, 8)])


@st.composite
def _bv_exprs(draw, depth=3):
    if depth == 0:
        return draw(_LEAF)
    op = draw(st.sampled_from(["leaf", "add", "mul", "bvand", "bvor",
                               "bvxor", "sub", "bvnot"]))
    if op == "leaf":
        return draw(_LEAF)
    if op == "bvnot":
        return ast.bvnot(draw(_bv_exprs(depth=depth - 1)))
    a = draw(_bv_exprs(depth=depth - 1))
    b = draw(_bv_exprs(depth=depth - 1))
    return getattr(ast, op)(a, b)


@st.composite
def _bool_exprs(draw):
    kind = draw(st.sampled_from(["eq", "ult", "ule", "slt", "sle"]))
    a = draw(_bv_exprs())
    b = draw(_bv_exprs())
    pred = getattr(ast, kind)(a, b)
    if draw(st.booleans()):
        pred = not_(pred)
    return pred


class TestIdempotenceAndSoundness:
    @settings(max_examples=150, deadline=None)
    @given(expr=_bv_exprs())
    def test_canonicalize_is_idempotent_on_bitvectors(self, expr):
        canon = canonicalize(expr)
        assert canonicalize(canon) is canon

    @settings(max_examples=150, deadline=None)
    @given(expr=_bool_exprs())
    def test_canonicalize_is_idempotent_on_predicates(self, expr):
        canon = canonicalize(expr)
        assert canonicalize(canon) is canon

    @settings(max_examples=150, deadline=None)
    @given(expr=_bv_exprs(), vx=st.integers(0, 255), vy=st.integers(0, 255),
           vz=st.integers(0, 255))
    def test_canonical_form_is_equivalent(self, expr, vx, vy, vz):
        model = {X: vx, Y: vy, Z: vz}
        assert evaluate(canonicalize(expr), model) == evaluate(expr, model)

    @settings(max_examples=150, deadline=None)
    @given(expr=_bool_exprs(), vx=st.integers(0, 255), vy=st.integers(0, 255),
           vz=st.integers(0, 255))
    def test_canonical_predicates_are_equivalent(self, expr, vx, vy, vz):
        model = {X: vx, Y: vy, Z: vz}
        assert evaluate(canonicalize(expr), model) == evaluate(expr, model)


class TestCanonicalConstraintSet:
    def test_variants_share_one_key(self):
        key_a = canonical_constraint_set([and_(ult(X, Y), eq(Y, Z))])
        key_b = canonical_constraint_set([eq(Z, Y), not_(ule(Y, X))])
        assert key_a == key_b

    def test_tautologies_are_dropped(self):
        assert canonical_constraint_set([TRUE, ule(X, bv_const(255, 8))]) \
            == frozenset()

    def test_contradiction_marks_the_set(self):
        key = canonical_constraint_set([ult(X, Y), FALSE])
        assert key == frozenset((FALSE,))

    def test_duplicates_merge(self):
        key = canonical_constraint_set([ult(X, Y), not_(ule(Y, X))])
        assert len(key) == 1

    def test_conjunctions_flatten(self):
        key = canonical_constraint_set([and_(P, Q)])
        assert key == canonical_constraint_set([Q, P])
