"""Unit and property tests for the satisfiability search.

The property tests are the solver's primary correctness argument: random
constraint sets over small widths are decided both by the solver and by
brute-force enumeration, and the answers must agree exactly.
"""

import itertools

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import SolverError
from repro.solver import ast
from repro.solver.ast import (
    and_,
    bool_var,
    bv_const,
    bv_var,
    eq,
    ite,
    ne,
    not_,
    or_,
    ult,
    zext,
)
from repro.solver.evalmodel import all_hold
from repro.solver.solver import SAT, Solver, UNSAT, check, is_satisfiable

X = bv_var("x", 8)
Y = bv_var("y", 8)
Z = bv_var("z", 8)


class TestBasicQueries:
    def test_trivial_sat(self):
        assert check([]).is_sat

    def test_trivial_unsat(self):
        assert check([ast.FALSE]).status == UNSAT

    def test_simple_interval_conflict(self):
        assert check([X < 10, X > 20]).status == UNSAT

    def test_simple_interval_sat(self):
        result = check([X > 10, X < 13])
        assert result.is_sat
        assert result.model[X] in (11, 12)

    def test_equality_chain(self):
        result = check([eq(X, Y), eq(Y, Z), eq(Z, bv_const(42, 8))])
        assert result.is_sat
        assert result.model[X] == 42

    def test_disequality_needs_search(self):
        constraints = [ne(X, bv_const(i, 8)) for i in range(255)]
        result = check(constraints)
        assert result.is_sat
        assert result.model[X] == 255

    def test_all_values_excluded_is_unsat(self):
        constraints = [ne(X, bv_const(i, 8)) for i in range(256)]
        assert check(constraints).status == UNSAT

    def test_signed_constraint(self):
        result = check([X.slt(0)])
        assert result.is_sat
        assert result.model[X] >= 128

    def test_wraparound_addition(self):
        # x + 1 == 0 forces x == 255.
        result = check([eq(X + 1, bv_const(0, 8))])
        assert result.is_sat
        assert result.model[X] == 255

    def test_checksum_style_definition(self):
        total = bv_var("sum", 8)
        result = check([eq(total, X + Y), X > 100, Y > 100, total < 5])
        assert result.is_sat
        model = result.model
        assert (model[X] + model[Y]) % 256 == model[total] < 5

    def test_bool_vars(self):
        p, q = bool_var("p"), bool_var("q")
        result = check([or_(p, q), not_(p)])
        assert result.is_sat
        assert result.model[q] == 1
        assert result.model[p] == 0

    def test_ite_constraint(self):
        picked = ite(ult(X, bv_const(10, 8)), bv_const(1, 8), bv_const(2, 8))
        result = check([eq(picked, bv_const(1, 8)), X > 5])
        assert result.is_sat
        assert 5 < result.model[X] < 10

    def test_non_bool_constraint_rejected(self):
        with pytest.raises(SolverError):
            check([X])

    def test_extra_vars_appear_in_model(self):
        free = bv_var("free", 8)
        result = check([X > 3], extra_vars=[free])
        assert free in result.model

    def test_unsat_result_has_no_model(self):
        result = check([ast.FALSE])
        with pytest.raises(SolverError):
            result.value(X)


class TestDefinitionElimination:
    def test_nested_definitions(self):
        a = bv_var("a", 8)
        b = bv_var("b", 8)
        # a := b + 1, b := 7 — a must become 8.
        result = check([eq(a, b + 1), eq(b, bv_const(7, 8))])
        assert result.is_sat
        assert result.model[a] == 8

    def test_contradictory_definitions(self):
        assert check([eq(X, bv_const(1, 8)), eq(X, bv_const(2, 8))]).status == UNSAT

    def test_definition_with_free_rhs_vars(self):
        wide = bv_var("wide", 16)
        result = check([eq(wide, zext(X, 16) + 300), wide > 400])
        assert result.is_sat
        assert (result.model[X] + 300) == result.model[wide] > 400


class TestStats:
    def test_counters_move(self):
        solver = Solver()
        solver.check([X > 10])
        solver.check([X > 10, X < 5])
        assert solver.stats.queries == 2
        assert solver.stats.sat_answers == 1
        assert solver.stats.unsat_answers == 1


# -- property tests against brute force --------------------------------------

_W = 4  # tiny width so brute force stays cheap
_VARS = [bv_var("a", _W), bv_var("b", _W)]


def _leaf(draw):
    choice = draw(st.integers(0, 2))
    if choice == 0:
        return _VARS[0]
    if choice == 1:
        return _VARS[1]
    return bv_const(draw(st.integers(0, 15)), _W)


@st.composite
def bv_terms(draw, depth=2):
    if depth == 0:
        return _leaf(draw)
    op = draw(st.sampled_from(
        ["leaf", "add", "sub", "mul", "bvand", "bvor", "bvxor", "ite"]))
    if op == "leaf":
        return _leaf(draw)
    if op == "ite":
        cond = draw(bool_terms(depth - 1))
        return ite(cond, draw(bv_terms(depth - 1)), draw(bv_terms(depth - 1)))
    a = draw(bv_terms(depth - 1))
    b = draw(bv_terms(depth - 1))
    return getattr(ast, op)(a, b)


@st.composite
def bool_terms(draw, depth=2):
    op = draw(st.sampled_from(["eq", "ult", "ule", "slt", "sle"]))
    a = draw(bv_terms(depth))
    b = draw(bv_terms(depth))
    pred = getattr(ast, op)(a, b)
    if draw(st.booleans()):
        pred = not_(pred)
    return pred


def _brute_force_sat(constraints):
    for va, vb in itertools.product(range(16), repeat=2):
        model = {_VARS[0]: va, _VARS[1]: vb}
        if all_hold(constraints, model):
            return True
    return False


class TestAgainstBruteForce:
    @settings(max_examples=300, deadline=None)
    @given(st.lists(bool_terms(), min_size=1, max_size=4))
    def test_solver_agrees_with_brute_force(self, constraints):
        expected = _brute_force_sat(constraints)
        result = check(constraints)
        assert result.is_sat == expected
        if result.is_sat:
            model = dict(result.model)
            for var in _VARS:
                model.setdefault(var, 0)
            assert all_hold(constraints, model)
