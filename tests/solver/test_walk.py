"""Tests for traversal, substitution, and rewriting utilities."""

from repro.solver.ast import and_, bool_var, bv_const, bv_var, eq, ult, zext
from repro.solver.walk import collect_vars, collect_vars_all, expr_size, simplify, substitute

X = bv_var("x", 8)
Y = bv_var("y", 8)


class TestCollectVars:
    def test_collects_all_vars(self):
        expr = (X + Y) * X
        assert collect_vars(expr) == {X, Y}

    def test_constants_have_no_vars(self):
        assert collect_vars(bv_const(5, 8)) == set()

    def test_collect_across_many(self):
        p = bool_var("p")
        found = collect_vars_all([ult(X, Y), p])
        assert found == {X, Y, p}

    def test_bool_and_bv_vars_distinct(self):
        # Same name, different sorts: must be treated as different variables.
        a_bv = bv_var("a", 8)
        a_bool = bool_var("a")
        assert len(collect_vars_all([ult(a_bv, X), a_bool])) == 3


class TestSubstitute:
    def test_substitution_folds(self):
        expr = X + Y
        result = substitute(expr, {X: bv_const(1, 8), Y: bv_const(2, 8)})
        assert result.value == 3

    def test_partial_substitution(self):
        expr = ult(X + 1, Y)
        result = substitute(expr, {Y: bv_const(0, 8)})
        # anything < 0 is unsatisfiable, folded to false at construction
        assert result.is_false

    def test_identity_preserved_without_hits(self):
        expr = ult(X, Y)
        assert substitute(expr, {bv_var("other", 8): bv_const(1, 8)}) == expr

    def test_substitute_through_zext(self):
        expr = zext(X, 16) + 5
        result = substitute(expr, {X: bv_const(250, 8)})
        assert result.value == 255

    def test_shared_subtrees_use_cache(self):
        shared = X + Y
        expr = and_(ult(shared, bv_const(9, 8)), eq(shared, bv_const(3, 8)))
        result = substitute(expr, {X: bv_const(1, 8)})
        assert collect_vars(result) == {Y}


class TestExprSize:
    def test_leaf_size(self):
        assert expr_size(X) == 1

    def test_shared_subtrees_counted_once(self):
        shared = X + Y
        expr = eq(shared, shared)  # folds to true at construction
        assert expr_size(expr) == 1

    def test_distinct_nodes_counted(self):
        assert expr_size(X + Y) == 3


class TestSimplify:
    def test_simplify_is_stable(self):
        expr = ult(X + 0, Y * 1)
        assert simplify(expr) == ult(X, Y)
