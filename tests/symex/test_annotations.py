"""Tests for the paper's annotation vocabulary (§5.2)."""

import pytest

from repro.errors import AnnotationError
from repro.solver import ast
from repro.symex.annotations import (
    constant_stub,
    constant_stub_bytes,
    make_symbolic,
    mark_accept,
    mark_reject,
    symbolic_return,
)
from repro.symex.engine import Engine, EngineConfig
from repro.symex.state import ACCEPTED, REJECTED


def _explore(program):
    return Engine(EngineConfig()).explore(program)


class TestMarkers:
    def test_mark_accept(self):
        result = _explore(lambda ctx: mark_accept(ctx, "ok"))
        assert result.paths[0].verdict == ACCEPTED
        assert result.paths[0].labels == ("ok",)

    def test_mark_reject(self):
        result = _explore(lambda ctx: mark_reject(ctx))
        assert result.paths[0].verdict == REJECTED


class TestSymbolicReturn:
    def test_figure9_range_constraint(self):
        """The paper's getPeerID over-approximation: return [0, 10]."""
        values = []

        def program(ctx):
            peer = symbolic_return(ctx, "peerID", 8, lo=0, hi=10)
            values.append(ctx.concretize(peer))

        _explore(program)
        assert values and 0 <= values[0] <= 10

    def test_custom_constraint_callback(self):
        def program(ctx):
            value = symbolic_return(
                ctx, "v", 8, constrain=lambda v: [v.eq(42)])
            assert ctx.concretize(value) == 42

        _explore(program)

    def test_make_symbolic_is_unconstrained(self):
        def program(ctx):
            value = make_symbolic(ctx, "state", width=16)
            assert value.width == 16
            taken_low = ctx.branch(value < 10)

        result = _explore(program)
        assert len(result.paths) == 2  # both directions feasible


class TestConstantStub:
    def test_stub_is_a_constant_expression(self):
        stub = constant_stub(0x5A)
        assert stub.is_const
        assert stub.value == 0x5A

    def test_multibyte_stub(self):
        stub = constant_stub_bytes([1, 2, 3])
        assert [b.value for b in stub] == [1, 2, 3]

    def test_nonpositive_width_rejected(self):
        with pytest.raises(AnnotationError):
            constant_stub(1, width=0)
