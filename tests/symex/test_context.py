"""Tests for the execution context API: sends, assume, concretize."""

import pytest

from repro.errors import SymexError
from repro.solver import ast
from repro.symex.engine import Engine, EngineConfig
from repro.symex.state import DROPPED


def _explore(program, **config):
    return Engine(EngineConfig(**config)).explore(program)


class TestSend:
    def test_payload_accepts_ints_and_bytes(self):
        def program(ctx):
            ctx.send("peer", [1, ctx.fresh_byte("b"), 255])

        result = _explore(program)
        sent = result.paths[0].sends[0]
        assert sent.destination == "peer"
        assert len(sent.payload) == 3
        assert sent.payload[0].value == 1

    def test_wide_expression_payload_rejected(self):
        def program(ctx):
            ctx.send("peer", [ctx.fresh_bitvec("wide", 16)])

        with pytest.raises(SymexError):
            _explore(program)

    def test_multiple_sends_kept_in_order(self):
        def program(ctx):
            ctx.send("a", [1])
            ctx.send("b", [2])

        result = _explore(program)
        assert [s.destination for s in result.paths[0].sends] == ["a", "b"]


class TestAssume:
    def test_assume_narrows_later_branches(self):
        def program(ctx):
            x = ctx.fresh_byte("x")
            ctx.assume(x < 10)
            taken = ctx.branch(x < 20)  # implied: no fork
            assert taken

        result = _explore(program)
        assert len(result.paths) == 1

    def test_unsatisfiable_assumption_kills_path(self):
        def program(ctx):
            x = ctx.fresh_byte("x")
            ctx.assume(x < 10)
            ctx.assume(x > 20)

        result = _explore(program)
        assert result.paths == []
        assert result.stats.paths_infeasible == 1

    def test_concrete_false_assumption_kills_path(self):
        result = _explore(lambda ctx: ctx.assume(False))
        assert result.stats.paths_infeasible == 1


class TestDropPath:
    def test_drop_path_records_dropped(self):
        def program(ctx):
            if ctx.branch(ctx.fresh_byte("x") < 10):
                ctx.drop_path()

        result = _explore(program)
        assert result.stats.paths_dropped == 1
        assert len(result.paths) == 1


class TestConcretize:
    def test_concretize_returns_feasible_value(self):
        seen = []

        def program(ctx):
            x = ctx.fresh_byte("x")
            ctx.assume(x > 200)
            seen.append(ctx.concretize(x))

        _explore(program)
        assert seen and seen[0] > 200

    def test_concretize_pins_the_value(self):
        def program(ctx):
            x = ctx.fresh_byte("x")
            value = ctx.concretize(x)
            taken = ctx.branch(x.eq(value))  # now concrete: no fork
            assert taken

        result = _explore(program)
        assert len(result.paths) == 1
