"""Tests for the symbolic execution engine: forking, verdicts, limits."""

import pytest

from repro.solver import ast
from repro.symex.engine import Engine, EngineConfig, client_verdict, server_verdict
from repro.symex.state import ACCEPTED, COMPLETED, LIMIT, REJECTED


def _engine(**overrides) -> Engine:
    return Engine(EngineConfig(**overrides))


class TestExploration:
    def test_straight_line_program_is_one_path(self):
        result = _engine().explore(lambda ctx: None)
        assert len(result.paths) == 1
        assert result.stats.forks == 0

    def test_symbolic_branch_forks_two_paths(self):
        def program(ctx):
            ctx.branch(ctx.fresh_byte("x") < 10)

        result = _engine().explore(program)
        assert len(result.paths) == 2
        assert result.stats.forks == 1

    def test_nested_branches_enumerate_all_paths(self):
        def program(ctx):
            x = ctx.fresh_byte("x")
            ctx.branch(x < 100)
            ctx.branch(x.eq(5))

        result = _engine().explore(program)
        # x<100/x==5 has three feasible combinations (x==5 implies x<100).
        assert len(result.paths) == 3

    def test_infeasible_direction_not_explored(self):
        def program(ctx):
            x = ctx.fresh_byte("x")
            if ctx.branch(x < 10):
                taken = ctx.branch(x > 20)  # infeasible under x < 10
                assert not taken

        result = _engine().explore(program)
        assert len(result.paths) == 2  # x<10 (with x>20 false) and x>=10

    def test_path_constraints_recorded_in_order(self):
        def program(ctx):
            x = ctx.fresh_byte("x")
            ctx.branch(x < 10)
            ctx.branch(x.eq(3))

        result = _engine().explore(program)
        deepest = max(result.paths, key=lambda p: p.branch_count)
        assert deepest.branch_count == 2
        assert len(deepest.constraints) == 2

    def test_concrete_branch_does_not_fork(self):
        def program(ctx):
            ctx.branch(True)
            ctx.branch(False)

        result = _engine().explore(program)
        assert len(result.paths) == 1
        assert result.paths[0].branch_count == 0


class TestVerdicts:
    def test_server_default_classifies_by_reply(self):
        def program(ctx):
            if ctx.branch(ctx.fresh_byte("x") < 10):
                ctx.send("client", [1])

        result = _engine().explore(program)
        assert {p.verdict for p in result.paths} == {ACCEPTED, REJECTED}

    def test_explicit_markers_override_default(self):
        def program(ctx):
            if ctx.branch(ctx.fresh_byte("x") < 10):
                ctx.send("client", [1])
                ctx.reject("reply-then-reject")
            else:
                ctx.accept("silent-accept")

        result = _engine().explore(program)
        verdicts = sorted(p.verdict for p in result.paths)
        assert verdicts == [ACCEPTED, REJECTED]
        rejected = next(p for p in result.paths if p.verdict == REJECTED)
        assert rejected.sends  # sent a reply yet explicitly rejected

    def test_client_verdict_marks_completed(self):
        result = _engine(default_verdict=client_verdict).explore(
            lambda ctx: ctx.send("server", [1, 2]))
        assert result.paths[0].verdict == COMPLETED

    def test_accept_labels_recorded(self):
        def program(ctx):
            ctx.accept("the-label")

        result = _engine().explore(program)
        assert result.paths[0].labels == ("the-label",)


class TestLimits:
    def test_branch_budget_limits_path(self):
        def program(ctx):
            while True:
                ctx.branch(ctx.fresh_byte("x") < 10)

        result = _engine(max_branches_per_path=5, max_paths=3).explore(program)
        assert all(p.verdict == LIMIT for p in result.paths)
        assert all(p.branch_count <= 5 for p in result.paths)

    def test_max_paths_caps_exploration(self):
        def program(ctx):
            for i in range(10):
                ctx.branch(ctx.fresh_byte(f"x{i}") < 10)

        result = _engine(max_paths=4).explore(program)
        assert len(result.paths) == 4

    def test_limited_paths_not_double_counted(self):
        def program(ctx):
            while True:
                ctx.branch(ctx.fresh_byte("x") < 10)

        result = _engine(max_branches_per_path=4, max_paths=5).explore(program)
        stats = result.stats
        assert stats.paths_limited == len(result.paths) == 5
        assert stats.paths_finished == 0

    def test_path_ids_dense_when_budget_hit(self):
        """Engine path ids must not skip values (each pop gets the next id)."""

        def program(ctx):
            while True:
                ctx.branch(ctx.fresh_byte("x") < 10)

        result = _engine(max_branches_per_path=3, max_paths=6).explore(program)
        ids = sorted(p.path_id for p in result.paths)
        assert ids == list(range(len(ids)))

    def test_path_ids_dense_with_mixed_verdicts(self):
        def program(ctx):
            x = ctx.fresh_byte("x")
            if ctx.branch(x < 10):
                ctx.branch(x > 20)  # one direction infeasible
            ctx.branch(x.eq(3))

        result = _engine().explore(program)
        ids = sorted(p.path_id for p in result.paths)
        # Finished-path ids are unique and drawn from one dense counter
        # shared with infeasible/pruned pops, so no id repeats.
        assert len(set(ids)) == len(ids)
        assert ids[0] == 0


class TestDeterminism:
    def test_same_program_same_paths(self):
        def program(ctx):
            x = ctx.fresh_byte("x")
            if ctx.branch(x < 50):
                ctx.send("s", [x])

        first = _engine().explore(program)
        second = _engine().explore(program)
        assert [p.decisions for p in first.paths] == \
            [p.decisions for p in second.paths]
        assert [p.constraints for p in first.paths] == \
            [p.constraints for p in second.paths]

    def test_fresh_names_stable_across_replays(self):
        def program(ctx):
            x = ctx.fresh_byte("x")
            y = ctx.fresh_byte("x")  # same base name: gets a suffix
            ctx.branch(x < 10)
            ctx.branch(y < 10)

        result = _engine().explore(program)
        names = {v.name for p in result.paths for c in p.constraints
                 for v in _vars(c)}
        assert names == {"x", "x#1"}


class TestIncrementalParity:
    """The incremental frame stack is a pure optimization: exploration
    must produce identical paths with it on or off."""

    @staticmethod
    def _program(ctx):
        x = ctx.fresh_byte("x")
        y = ctx.fresh_byte("y")
        if ctx.branch(x < 100):
            ctx.branch(x.eq(5))
            if ctx.branch(y > 200):
                ctx.send("s", [x, y])
        else:
            ctx.branch(ast.or_(y.eq(1), y.eq(2)))

    def test_same_paths_with_and_without_frame_stack(self):
        with_frames = _engine(incremental=True).explore(self._program)
        without = _engine(incremental=False).explore(self._program)
        assert [(p.decisions, p.verdict, p.constraints)
                for p in with_frames.paths] == \
            [(p.decisions, p.verdict, p.constraints) for p in without.paths]

    def test_exploration_reuses_prefix_frames(self):
        engine = _engine(incremental=True)
        engine.explore(self._program)
        stats = engine.solver.stats
        assert stats.frames_pushed > 0
        # Branch probes pose pc+(cond,) then pc+(¬cond,): the pc prefix
        # frames must be reused between the two, not re-pushed.
        assert stats.frames_reused > 0

    def test_incremental_off_uses_plain_solver(self):
        engine = _engine(incremental=False)
        assert engine.incremental is None
        engine.explore(self._program)
        assert engine.solver.stats.frames_pushed == 0


def _vars(expr):
    from repro.solver.walk import collect_vars

    return collect_vars(expr)
