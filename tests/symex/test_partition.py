"""Property: the engine's paths partition the input space.

For a deterministic program branching on one symbolic byte, the path
conditions of all finished paths must cover every input value exactly
once — no value lost (soundness of forking) and no value on two paths
(paths are disjoint by construction of branch constraints).
"""

from hypothesis import given, settings, strategies as st

from repro.solver import ast
from repro.solver.enumerate import count_models
from repro.symex.engine import Engine, EngineConfig


@settings(max_examples=25, deadline=None)
@given(thresholds=st.lists(st.integers(0, 255), min_size=1, max_size=4),
       pivot=st.integers(0, 255))
def test_paths_partition_the_byte(thresholds, pivot):
    def program(ctx):
        x = ctx.fresh_byte("x")
        for threshold in thresholds:
            ctx.branch(x < threshold)
        ctx.branch(x.eq(pivot))

    result = Engine(EngineConfig()).explore(program)
    x = ast.bv_var("x", 8)
    total = 0
    for path in result.paths:
        total += count_models(list(path.constraints), [x])
    assert total == 256


@settings(max_examples=15, deadline=None)
@given(thresholds=st.lists(st.integers(0, 255), min_size=2, max_size=3))
def test_paths_are_pairwise_disjoint(thresholds):
    def program(ctx):
        x = ctx.fresh_byte("x")
        for threshold in thresholds:
            ctx.branch(x < threshold)

    result = Engine(EngineConfig()).explore(program)
    from repro.solver import check

    for i, first in enumerate(result.paths):
        for second in result.paths[i + 1:]:
            joint = list(first.constraints) + list(second.constraints)
            assert not check(joint).is_sat


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 2**16))
def test_two_byte_partition(seed):
    import random

    rng = random.Random(seed)
    t1, t2 = rng.randrange(256), rng.randrange(256)

    def program(ctx):
        x = ctx.fresh_byte("x")
        y = ctx.fresh_byte("y")
        if ctx.branch(x < t1):
            ctx.branch(y < t2)
        else:
            ctx.branch(ast.eq(y, x))

    result = Engine(EngineConfig()).explore(program)
    x, y = ast.bv_var("x", 8), ast.bv_var("y", 8)
    total = sum(count_models(list(p.constraints), [x, y])
                for p in result.paths)
    assert total == 256 * 256
