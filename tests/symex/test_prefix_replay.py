"""Deterministic prefix replay: the foundation of sharded exploration.

A decision prefix exported from one engine (a frontier/worklist entry)
must, when replayed as a root on a *fresh* engine, reproduce exactly the
subtree the exporting run would have explored below it — identical
constraint sequences, identical verdicts, identical fresh-variable names.
That determinism is what lets the shard scheduler hand subtrees to other
processes.
"""

from hypothesis import given, settings, strategies as st

from repro.symex.engine import Engine, EngineConfig
from repro.symex.state import canonical_key


def _program(thresholds, pivot):
    def program(ctx):
        x = ctx.fresh_byte("x")
        for i, threshold in enumerate(thresholds):
            if ctx.branch(ctx.fresh_bool(f"b{i}")):
                ctx.branch(x < threshold)
        ctx.branch(x.eq(pivot))
    return program


@settings(max_examples=20, deadline=None)
@given(thresholds=st.lists(st.integers(0, 255), min_size=1, max_size=3),
       pivot=st.integers(0, 255),
       cut=st.integers(0, 3))
def test_replayed_prefix_reproduces_identical_paths(thresholds, pivot, cut):
    """Every serial path is reproduced exactly by replaying its prefix."""
    program = _program(thresholds, pivot)
    serial = Engine(EngineConfig()).explore(program)
    target = serial.paths[len(serial.paths) // 2]
    prefix = target.decisions[:min(cut, len(target.decisions))]

    replay = Engine(EngineConfig()).explore(program, roots=[prefix])

    # The replay must produce exactly the serial paths below the prefix —
    # same constraints (the "path constraint set"), same sends/labels,
    # same verdicts, in canonical order.
    expected = [p for p in serial.paths
                if p.decisions[:len(prefix)] == prefix]
    expected.sort(key=lambda p: canonical_key(p.decisions))
    got = sorted(replay.paths, key=lambda p: canonical_key(p.decisions))
    assert [(p.decisions, p.constraints, p.verdict, p.sends, p.labels)
            for p in got] == \
           [(p.decisions, p.constraints, p.verdict, p.sends, p.labels)
            for p in expected]


@settings(max_examples=20, deadline=None)
@given(thresholds=st.lists(st.integers(0, 255), min_size=1, max_size=3),
       pivot=st.integers(0, 255))
def test_scheduled_replay_skips_solver_queries(thresholds, pivot):
    """Branches inside the prefix take the recorded direction directly —
    exploring a leaf prefix issues no feasibility forks for it."""
    program = _program(thresholds, pivot)
    serial = Engine(EngineConfig()).explore(program)
    leaf = serial.paths[0]

    engine = Engine(EngineConfig())
    replay = engine.explore(program, roots=[leaf.decisions])
    replayed = [p for p in replay.paths if p.decisions == leaf.decisions]
    assert len(replayed) == 1
    assert replayed[0].constraints == leaf.constraints
    assert replayed[0].verdict == leaf.verdict


@settings(max_examples=15, deadline=None)
@given(thresholds=st.lists(st.integers(0, 255), min_size=2, max_size=3),
       pivot=st.integers(0, 255))
def test_serial_ids_are_canonical_ranks(thresholds, pivot):
    """DFS completion order == canonical prefix order: the property the
    sharded merge relies on to renumber paths identically to serial."""
    program = _program(thresholds, pivot)
    serial = Engine(EngineConfig()).explore(program)
    keys = [canonical_key(decisions) for decisions, _ in serial.executed]
    assert keys == sorted(keys)
    assert [p.path_id for p in serial.paths] == sorted(
        p.path_id for p in serial.paths)
