"""Tests for DFS/BFS exploration orders."""

import pytest

from repro.errors import SymexError
from repro.solver import ast
from repro.symex.engine import BFS, DFS, Engine, EngineConfig


def _ladder(ctx):
    """Three independent branches; sends the depth reached on each path."""
    depth = 0
    for index in range(3):
        if not ctx.branch(ctx.fresh_byte(f"b{index}") < 128):
            break
        depth += 1
    ctx.send("sink", [depth])


def _depths(result):
    return [p.sends[0].payload[0].value for p in result.paths]


class TestSearchOrder:
    def test_same_path_set_either_order(self):
        dfs = Engine(EngineConfig(search_order=DFS)).explore(_ladder)
        bfs = Engine(EngineConfig(search_order=BFS)).explore(_ladder)
        assert sorted(_depths(dfs)) == sorted(_depths(bfs))
        assert {p.constraints for p in dfs.paths} == \
            {p.constraints for p in bfs.paths}

    def test_dfs_completes_deepest_forks_first(self):
        result = Engine(EngineConfig(search_order=DFS)).explore(_ladder)
        # Initial run reaches depth 3; DFS then drains the most recent
        # fork outward: 2, 1, 0.
        assert _depths(result) == [3, 2, 1, 0]

    def test_bfs_drains_forks_in_creation_order(self):
        result = Engine(EngineConfig(search_order=BFS)).explore(_ladder)
        # After the first (deepest) run, BFS replays the earliest fork
        # (the shallowest sibling) before the deeper ones.
        assert _depths(result) == [3, 0, 1, 2]

    def test_unknown_order_rejected(self):
        engine = Engine(EngineConfig(search_order="zigzag"))
        with pytest.raises(SymexError):
            engine.explore(_ladder)

    def test_max_paths_interacts_with_order(self):
        dfs = Engine(EngineConfig(search_order=DFS, max_paths=2))
        bfs = Engine(EngineConfig(search_order=BFS, max_paths=2))
        first = dfs.explore(_ladder)
        second = bfs.explore(_ladder)
        assert len(first.paths) == len(second.paths) == 2
        # Both saw the same first path, then diverged.
        assert _depths(first)[0] == _depths(second)[0] == 3
        assert _depths(first)[1] != _depths(second)[1]
