"""Unit tests for the Bracha broadcast system: oracles and concrete node."""

from itertools import product

from repro.net.network import Network
from repro.systems.broadcast import (
    BROADCASTER,
    BROADCAST_VALUE,
    BroadcastNode,
    FORGED_SENDER,
    FULL_CERTS,
    MSG_ECHO,
    MSG_READY,
    MSG_SEND,
    NODE_IDS,
    NO_CERT,
    THIN_CERTS,
    THIN_QUORUM,
    all_trojan_classes,
    broadcast_message,
    classify_message,
    is_node_accepted,
    is_peer_generable,
    run_forged_delivery_demo,
)


def _message_space():
    """Every kind x sender x value-ish x cert combination that matters."""
    for fields in product((MSG_SEND, MSG_ECHO, MSG_READY, 0x00),
                          (*NODE_IDS, 7),                    # sender
                          (BROADCAST_VALUE, 0x00, 0xFF),     # value
                          range(17)):                        # cert
        yield broadcast_message(*fields)


class TestGroundTruthOracles:
    def test_classification_matches_predicates(self):
        for message in _message_space():
            trojan = classify_message(message)
            expected = (is_node_accepted(message)
                        and not is_peer_generable(message))
            assert (trojan is not None) == expected, message.hex()

    def test_brute_force_covers_exactly_the_seeded_classes(self):
        found = {classify_message(m) for m in _message_space()}
        found.discard(None)
        assert found == set(all_trojan_classes())
        assert len(all_trojan_classes()) == 7

    def test_generable_is_a_subset_of_accepted(self):
        for message in _message_space():
            if is_peer_generable(message):
                assert is_node_accepted(message), message.hex()

    def test_forged_send_is_one_class(self):
        forged = [classify_message(broadcast_message(MSG_SEND, sender,
                                                     BROADCAST_VALUE))
                  for sender in NODE_IDS if sender != BROADCASTER]
        assert all(cls is not None and cls.kind == FORGED_SENDER
                   for cls in forged)
        assert len(set(forged)) == 1

    def test_thin_quorum_is_one_class_per_certificate(self):
        classes = {classify_message(
            broadcast_message(MSG_READY, BROADCASTER, BROADCAST_VALUE,
                              cert))
            for cert in THIN_CERTS}
        assert all(cls is not None and cls.kind == THIN_QUORUM
                   for cls in classes)
        assert len(classes) == len(THIN_CERTS) == 6

    def test_full_certificate_ready_is_benign(self):
        for cert in FULL_CERTS:
            ready = broadcast_message(MSG_READY, 1, BROADCAST_VALUE, cert)
            assert is_node_accepted(ready)
            assert is_peer_generable(ready)
            assert classify_message(ready) is None

    def test_equivocating_value_is_rejected_everywhere(self):
        for kind in (MSG_SEND, MSG_ECHO, MSG_READY):
            message = broadcast_message(kind, BROADCASTER, 0x13,
                                        FULL_CERTS[0])
            assert not is_node_accepted(message)
            assert not is_peer_generable(message)


class TestConcreteNode:
    def test_node_accept_matches_oracle(self):
        # Differential check: a node with the SEND history pinned accepts
        # exactly the oracle's accept set (counted via the accept tally).
        for message in _message_space():
            node = BroadcastNode(recorded=BROADCAST_VALUE)
            node.handle("peer", message, Network())
            assert (node.accepted == 1) == is_node_accepted(message), \
                message.hex()

    def test_strict_node_accepts_only_generable_messages(self):
        # The strict control is the fixed node: its accept set is the
        # correct peers' generable set, so no Trojans exist against it.
        for message in _message_space():
            node = BroadcastNode(strict=True, recorded=BROADCAST_VALUE)
            node.handle("peer", message, Network())
            assert (node.accepted == 1) == is_peer_generable(message), \
                message.hex()

    def test_delivery_needs_distinct_ready_senders(self):
        node = BroadcastNode(recorded=BROADCAST_VALUE)
        network = Network()
        ready = broadcast_message(MSG_READY, 1, BROADCAST_VALUE,
                                  FULL_CERTS[0])
        for _ in range(3):  # the same sender three times is one vote
            node.handle("peer", ready, network)
        assert node.delivered is None
        for sender in (2, 3):
            node.handle("peer",
                        broadcast_message(MSG_READY, sender,
                                          BROADCAST_VALUE, FULL_CERTS[0]),
                        network)
        assert node.delivered == BROADCAST_VALUE

    def test_forged_delivery_demo(self):
        outcome = run_forged_delivery_demo()
        assert outcome.forged_echoed          # echoed a stolen slot
        assert outcome.delivered == 0x66      # ...and delivered the forgery
        assert not outcome.control_echoed     # the fixed node did neither
        assert outcome.control_delivered is None
