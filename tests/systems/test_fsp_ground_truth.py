"""Tests for the FSP ground-truth oracles and Trojan class math (§6.2)."""

from hypothesis import given, strategies as st

from repro.messages.concrete import encode
from repro.systems.fsp import (
    COMMANDS,
    FSP_LAYOUT,
    GroundTruth,
    all_trojan_classes,
    classify_message,
    is_client_generable,
    is_server_accepted,
)
from repro.systems.fsp.protocol import STUBS


def _message(cmd=None, bb_len=1, buf=b"a\x00\x00\x00\x00", **overrides):
    fields = {
        "cmd": cmd if cmd is not None else COMMANDS["frm"],
        "sum": STUBS["sum"],
        "bb_key": STUBS["bb_key"],
        "bb_seq": STUBS["bb_seq"],
        "bb_len": bb_len,
        "bb_pos": STUBS["bb_pos"],
        "buf": buf,
    }
    fields.update(overrides)
    return encode(FSP_LAYOUT, fields)


class TestClassCount:
    def test_exactly_eighty_classes(self):
        # (1 + 2 + 3 + 4) * 8 = 80 (§6.2).
        assert len(all_trojan_classes()) == 80

    def test_classes_are_distinct(self):
        classes = all_trojan_classes()
        assert len(set(classes)) == len(classes)

    def test_true_length_always_below_reported(self):
        for cls in all_trojan_classes():
            assert cls.true_length < cls.reported_length


class TestServerOracle:
    def test_valid_message_accepted(self):
        assert is_server_accepted(_message(bb_len=1, buf=b"a\x00xyz"))

    def test_wrong_stub_rejected(self):
        assert not is_server_accepted(_message(sum=0))

    def test_unknown_command_rejected(self):
        assert not is_server_accepted(_message(cmd=0xFF))

    def test_zero_length_rejected(self):
        assert not is_server_accepted(_message(bb_len=0, buf=b"\x00" * 5))

    def test_missing_terminator_rejected(self):
        assert not is_server_accepted(_message(bb_len=2, buf=b"abcde"))

    def test_unprintable_path_rejected(self):
        assert not is_server_accepted(_message(bb_len=1, buf=b"\x07\x00abc"))

    def test_early_nul_accepted_the_bug(self):
        # bb_len=3 but the path ends at 1: the mismatched-length Trojan.
        assert is_server_accepted(_message(bb_len=3, buf=b"a\x00X\x00z"))

    def test_wildcard_accepted_the_bug(self):
        assert is_server_accepted(_message(bb_len=2, buf=b"f*\x00zz"))


class TestClientOracle:
    def test_valid_message_generable(self):
        assert is_client_generable(_message(bb_len=2, buf=b"ab\x00zz"))

    def test_early_nul_not_generable(self):
        assert not is_client_generable(_message(bb_len=3, buf=b"a\x00X\x00z"))

    def test_wildcard_generable_only_in_literal_mode(self):
        message = _message(bb_len=2, buf=b"f*\x00zz")
        assert is_client_generable(message, allow_wildcards=True)
        assert not is_client_generable(message, allow_wildcards=False)


class TestClassify:
    def test_valid_message_is_not_trojan(self):
        assert classify_message(_message(bb_len=1, buf=b"a\x00xyz")) is None

    def test_trojan_maps_to_its_class(self):
        trojan = classify_message(_message(cmd=COMMANDS["fcat"], bb_len=3,
                                           buf=b"ab\x00\x00z"))
        assert trojan is not None
        assert trojan.command == COMMANDS["fcat"]
        assert trojan.reported_length == 3
        assert trojan.true_length == 2

    def test_every_class_has_a_witness(self):
        # Construct the canonical witness of each class and classify it
        # back: the mapping is exact and onto.
        for cls in all_trojan_classes():
            path = b"x" * cls.true_length
            buf = bytearray(5)
            buf[:len(path)] = path
            # NUL at true_length (already zero), terminator at reported
            # length (already zero), printable filler elsewhere.
            for position in range(cls.true_length + 1, 5):
                if position != cls.reported_length:
                    buf[position] = ord("y")
            message = _message(cmd=cls.command, bb_len=cls.reported_length,
                               buf=bytes(buf))
            assert classify_message(message) == cls


class TestScoring:
    def test_score_separates_tp_and_fp(self):
        trojan = _message(bb_len=2, buf=b"a\x00\x00zz")
        valid = _message(bb_len=1, buf=b"a\x00xyz")
        score = GroundTruth.score([trojan, valid, trojan])
        assert score.true_positives == 2
        assert score.false_positives == 1
        assert len(score.classes_found) == 1

    def test_coverage_and_missing(self):
        score = GroundTruth.score([])
        assert score.coverage == 0.0
        assert len(score.missing()) == 80

    @given(payload=st.binary(min_size=17, max_size=17))
    def test_oracles_consistent_on_random_messages(self, payload):
        """classify() is exactly 'accepted and not generable'."""
        is_trojan = classify_message(payload) is not None
        assert is_trojan == (is_server_accepted(payload)
                             and not is_client_generable(payload))
