"""Tests for the concrete FSP deployment, including the §6.3 scenarios."""

import pytest

from repro.fsys.memfs import MemFS
from repro.net.inject import Injector
from repro.net.network import Network, Node
from repro.systems.fsp import (
    FspServerNode,
    client_command,
    expand_argument,
    rename_command,
)
from repro.messages.concrete import encode
from repro.systems.fsp.protocol import COMMANDS, FSP_LAYOUT, STUBS


class _Sink(Node):
    def __init__(self, name="user"):
        super().__init__(name)
        self.replies = []

    def handle(self, source, payload, network):
        self.replies.append(payload)


@pytest.fixture
def deployment():
    network = Network()
    server = network.attach(FspServerNode("server"))
    user = network.attach(_Sink("user"))
    return network, server, user


def _run(network, message):
    network.send("user", "server", message)
    network.run()


class TestConcreteServer:
    def test_mkdir_and_ls(self, deployment):
        network, server, user = deployment
        _run(network, client_command("fmkdir", "docs"))
        assert server.fs.is_dir("/srv/docs")
        _run(network, client_command("fls", "docs"))
        assert user.replies[-1] == b"\x01"

    def test_rm_deletes_file(self, deployment):
        network, server, user = deployment
        server.fs.write_file("/srv/f1", b"data")
        _run(network, client_command("frm", "f1"))
        assert not server.fs.exists("/srv/f1")

    def test_grab_reads_and_deletes(self, deployment):
        network, server, user = deployment
        server.fs.write_file("/srv/g", b"data")
        _run(network, client_command("fgrab", "g"))
        assert not server.fs.exists("/srv/g")

    def test_bad_stub_rejected(self, deployment):
        network, server, user = deployment
        message = bytearray(client_command("fstat", "x"))
        message[1] ^= 0xFF  # corrupt the sum stub
        _run(network, bytes(message))
        assert server.rejected == 1
        assert not user.replies

    def test_client_refuses_unprintable_path(self):
        with pytest.raises(ValueError):
            client_command("frm", "a\x07")

    def test_client_refuses_overlong_path(self):
        with pytest.raises(ValueError):
            client_command("frm", "abcde")


class TestMismatchedLengthImpact:
    """§6.3: a NUL before bb_len smuggles an unvalidated payload."""

    def test_hidden_payload_accepted(self, deployment):
        network, server, user = deployment
        server.fs.write_file("/srv/a", b"data")
        trojan = encode(FSP_LAYOUT, {
            "cmd": COMMANDS["frm"], "sum": STUBS["sum"],
            "bb_key": STUBS["bb_key"], "bb_seq": STUBS["bb_seq"],
            "bb_len": 4, "bb_pos": STUBS["bb_pos"],
            "buf": b"a\x00\xde\xad\x00",  # path 'a', hidden payload DE AD
        })
        injector = Injector(network, "server", "user")
        injector.inject(trojan)
        assert server.accepted == 1
        assert not server.fs.exists("/srv/a")  # the action still ran


class TestWildcardImpact:
    """§6.3: create 'f*' via fmv, then fail to delete it safely.

    Path bound 5 keeps names short; the shape is the paper's
    ``mv file file*`` / ``rm file*`` scenario verbatim.
    """

    def _populate(self, server):
        for name in ("f", "f1", "f2", "bank"):
            server.fs.write_file(f"/srv/{name}", name.encode())

    def test_mv_creates_literal_star_file(self, deployment):
        network, server, user = deployment
        self._populate(server)
        # 'fmv f f*': the source is globbed (a literal match suffices),
        # the target is NEVER globbed -> a literal 'f*' file appears.
        _run(network, rename_command("f", "f*"))
        assert server.fs.exists("/srv/f*")
        assert not server.fs.exists("/srv/f")

    def test_rm_star_collateral_damage(self, deployment):
        network, server, user = deployment
        self._populate(server)
        _run(network, rename_command("f", "f*"))

        # The user now wants to delete 'f*'. The client globs the
        # argument with no escape: it matches f* AND f1, f2...
        listing = server.fs.listdir("/srv")
        targets = expand_argument("f*", listing)
        assert set(targets) == {"f*", "f1", "f2"}
        for target in targets:
            _run(network, client_command("frm", target))
        # The star file is gone - but so is every innocent 'f' file.
        assert not server.fs.exists("/srv/f*")
        assert not server.fs.exists("/srv/f1")
        assert not server.fs.exists("/srv/f2")
        assert server.fs.exists("/srv/bank")

    def test_escaping_does_not_work(self, deployment):
        network, server, user = deployment
        self._populate(server)
        _run(network, rename_command("f", "f*"))
        # 'rm f\*' does not mean literal 'f*' in FSP globbing: the
        # backslash is a regular character and matches nothing.
        listing = server.fs.listdir("/srv")
        targets = expand_argument(r"f\*", listing)
        assert targets == []  # no expansion and no literal match
        assert server.fs.exists("/srv/f*")  # the file survives

    def test_rename_with_unprintable_destination_rejected(self, deployment):
        network, server, user = deployment
        self._populate(server)
        bad = bytearray(rename_command("a", "b"))
        view = FSP_LAYOUT.view("buf")
        bad[view.offset + 2] = 0x07  # unprintable destination byte
        _run(network, bytes(bad))
        assert server.rejected == 1
