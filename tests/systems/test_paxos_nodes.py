"""Tests for the concrete Paxos deployment and Trojan injection."""

import pytest

from repro.net.inject import Injector
from repro.net.network import Network
from repro.systems.paxos.nodes import (
    PaxosAcceptorNode,
    PaxosProposerNode,
    accept_message,
    prepare_message,
)


@pytest.fixture
def deployment():
    network = Network()
    acceptor = network.attach(PaxosAcceptorNode())
    proposer = network.attach(PaxosProposerNode("proposer", ballot=3,
                                                value=7))
    return network, acceptor, proposer


class TestConsensusRound:
    def test_round_chooses_the_proposed_value(self, deployment):
        network, acceptor, proposer = deployment
        proposer.start(network)
        network.run()
        assert proposer.chosen
        assert acceptor.accepted_value == 7
        assert acceptor.promised == 3

    def test_stale_prepare_nacked(self, deployment):
        network, acceptor, proposer = deployment
        proposer.start(network)
        network.run()
        network.send("proposer", "acceptor", prepare_message(2))
        network.run()
        assert acceptor.promised == 3  # unchanged

    def test_stale_accept_rejected(self, deployment):
        network, acceptor, proposer = deployment
        proposer.start(network)
        network.run()
        network.send("proposer", "acceptor", accept_message(1, 99))
        network.run()
        assert acceptor.accepted_value == 7

    def test_garbage_ignored(self, deployment):
        network, acceptor, _ = deployment
        network.send("proposer", "acceptor", b"\x01\x02")
        network.run()
        assert acceptor.promised == 0


class TestTrojanInjection:
    """The §3.4 scenario concretely: the acceptor is in phase 2 with
    value 7 promised to ballot 3 — an ACCEPT(3, v != 7) is Trojan and
    silently corrupts the decision."""

    def test_foreign_value_overwrites_decision(self, deployment):
        network, acceptor, proposer = deployment
        proposer.start(network)
        network.run()
        assert acceptor.accepted_value == 7

        injector = Injector(network, "acceptor", spoof_source="proposer",
                            probe=lambda: acceptor.accepted_value)
        outcome = injector.inject(accept_message(3, 42))
        assert outcome.changed_state
        assert acceptor.accepted_value == 42  # consensus corrupted

    def test_outbid_ballot_trojan(self, deployment):
        network, acceptor, proposer = deployment
        proposer.start(network)
        network.run()
        # Nobody holds a promise for ballot 4, yet the acceptor takes it.
        injector = Injector(network, "acceptor", spoof_source="proposer")
        injector.inject(accept_message(4, 13))
        assert acceptor.accepted_ballot == 4
        assert acceptor.accepted_value == 13
