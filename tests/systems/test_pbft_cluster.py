"""Tests for the concrete PBFT cluster and the MAC attack impact (§6.3)."""

import pytest

from repro.systems.pbft import run_workload
from repro.systems.pbft.cluster import (
    PbftClientNode,
    PbftReplicaNode,
    build_cluster,
)


class TestNormalOperation:
    def test_correct_request_commits(self):
        stats = run_workload(1)
        assert stats.committed == 1
        assert stats.view_changes == 0

    def test_sustained_correct_workload(self):
        stats = run_workload(20)
        assert stats.committed == 20
        assert stats.view_changes == 0
        assert stats.replies >= 20  # at least one REPLY per commit

    def test_request_ids_increase(self):
        client = PbftClientNode("c", cid=1)
        first = client.next_request()
        second = client.next_request()
        assert first != second


class TestMacAttack:
    def test_bad_mac_triggers_view_change(self):
        stats = run_workload(4, malicious_every=4)
        assert stats.view_changes >= 1

    def test_bad_mac_request_does_not_commit(self):
        stats = run_workload(1, malicious_every=1)
        assert stats.committed == 0
        assert stats.view_changes >= 1

    def test_attack_degrades_throughput(self):
        clean = run_workload(30)
        attacked = run_workload(30, malicious_every=2)
        assert attacked.committed < clean.committed
        assert attacked.throughput < clean.throughput
        assert attacked.view_changes > 0

    def test_degradation_scales_with_attack_rate(self):
        light = run_workload(30, malicious_every=10)
        heavy = run_workload(30, malicious_every=2)
        assert heavy.throughput < light.throughput
        assert heavy.view_changes > light.view_changes

    def test_recovery_costs_extra_messages(self):
        clean = run_workload(10)
        attacked = run_workload(10, malicious_every=10)
        # Same request count, strictly more network traffic.
        assert attacked.deliveries > clean.deliveries


class TestClusterMechanics:
    def test_build_cluster_attaches_four_replicas(self):
        network, replicas, hub = build_cluster()
        assert len(replicas) == 4
        assert replicas[0].is_primary
        assert not replicas[1].is_primary

    def test_view_change_rotates_primary(self):
        network, replicas, hub = build_cluster()
        attacker = network.attach(PbftClientNode("evil", cid=2,
                                                 malicious=True))
        network.send("evil", "replica0", attacker.next_request())
        network.run()
        assert all(r.view >= 1 for r in replicas)
        new_primary = next(r for r in replicas if r.is_primary)
        assert new_primary.index == replicas[0].view % 4
