"""Robustness: PBFT replicas must survive arbitrary wire garbage."""

from hypothesis import given, settings, strategies as st

from repro.net.network import Network
from repro.systems.pbft.cluster import PbftReplicaNode, build_cluster


@settings(max_examples=100, deadline=None)
@given(payload=st.binary(max_size=30))
def test_replica_survives_garbage(payload):
    network, replicas, hub = build_cluster()
    network.send("fuzzer", "replica0", payload)
    network.run()  # must not raise


@settings(max_examples=50, deadline=None)
@given(payloads=st.lists(st.binary(min_size=1, max_size=30), max_size=5))
def test_cluster_still_commits_after_garbage(payloads):
    from repro.systems.pbft.cluster import PbftClientNode

    network, replicas, hub = build_cluster()
    for payload in payloads:
        network.send("fuzzer", "replica0", payload)
    network.run()
    client = network.attach(PbftClientNode("client", cid=1))
    # Garbage may spuriously advance protocol state (votes are unsigned
    # in the model), but a well-formed request afterwards must still be
    # processed without the network erroring out.
    primary = f"replica{replicas[0].view % 4}"
    network.send("client", primary, client.next_request())
    network.run()


def test_empty_payload_dropped():
    network, replicas, hub = build_cluster()
    network.send("x", "replica1", b"")
    network.run()
    assert all(r.view == 0 for r in replicas)
