"""Unit tests for the Raft system: oracles, concrete follower, attack."""

from itertools import product

from repro.messages.concrete import encode
from repro.systems.raft import (
    COMMIT_INDEX,
    CURRENT_TERM,
    LAST_INDEX,
    RAFT_LAYOUT,
    RaftFollowerNode,
    STALE_APPEND,
    TERM_LEADERS,
    VOTE_OFF_BY_ONE,
    all_trojan_classes,
    append_message,
    classify_message,
    is_follower_accepted,
    is_peer_generable,
    run_truncation_attack,
)
from repro.net.network import Network, Node


def _message(msg_type, term, sender, idx, logterm, cmd):
    return encode(RAFT_LAYOUT, {
        "type": msg_type, "term": term, "sender": sender,
        "idx": idx, "logterm": logterm, "cmd": cmd,
    })


def _small_message_space():
    """A brute-force slice of the wire space covering every branch."""
    for fields in product((0xA1, 0xB2, 0x00),      # type
                          range(0, CURRENT_TERM + 2),  # term
                          range(0, 5),              # sender
                          range(0, LAST_INDEX + 2),  # idx
                          range(0, 5),              # logterm
                          (0, 1)):                  # cmd
        yield _message(*fields)


class TestGroundTruthOracles:
    def test_generable_implies_not_trojan(self):
        for message in _small_message_space():
            if is_peer_generable(message):
                assert classify_message(message) is None

    def test_classification_matches_predicates(self):
        for message in _small_message_space():
            trojan = classify_message(message)
            expected = (is_follower_accepted(message)
                        and not is_peer_generable(message))
            assert (trojan is not None) == expected, message.hex()

    def test_brute_force_covers_exactly_the_seeded_classes(self):
        found = {classify_message(m) for m in _small_message_space()}
        found.discard(None)
        assert found == set(all_trojan_classes())

    def test_nine_classes(self):
        classes = all_trojan_classes()
        assert len(classes) == 9
        assert sum(1 for c in classes if c.kind == STALE_APPEND) == 8
        assert sum(1 for c in classes if c.kind == VOTE_OFF_BY_ONE) == 1

    def test_committed_truncation_marking(self):
        truncating = [c for c in all_trojan_classes()
                      if c.truncates_committed]
        assert all(c.kind == STALE_APPEND and c.index < COMMIT_INDEX
                   for c in truncating)
        assert len(truncating) == 2 * COMMIT_INDEX

    def test_stale_append_trojan_wire_shape(self):
        trojan = _message(0xA1, 1, TERM_LEADERS[1], 0, 0, 0x99)
        assert is_follower_accepted(trojan)
        assert not is_peer_generable(trojan)
        assert classify_message(trojan).kind == STALE_APPEND

    def test_current_term_append_is_benign(self):
        benign = _message(0xA1, CURRENT_TERM, TERM_LEADERS[CURRENT_TERM],
                          LAST_INDEX, CURRENT_TERM, 0x42)
        assert is_follower_accepted(benign)
        assert is_peer_generable(benign)
        assert classify_message(benign) is None


class _Sink(Node):
    def __init__(self, name):
        super().__init__(name)
        self.received = []

    def handle(self, source, payload, network):
        self.received.append(payload)


class TestConcreteFollower:
    def test_truncation_attack_erases_committed_entries(self):
        outcome = run_truncation_attack()
        assert outcome.acked
        assert outcome.committed_lost == COMMIT_INDEX
        assert len(outcome.log_terms_after) < len(outcome.log_terms_before)

    def test_correct_append_preserves_committed_prefix(self):
        network = Network()
        follower = RaftFollowerNode()
        leader = _Sink("leader")
        network.attach(follower)
        network.attach(leader)
        network.send("leader", follower.name,
                     append_message(CURRENT_TERM, LAST_INDEX, cmd=0x07))
        network.run()
        assert follower.committed_lost == 0
        assert follower.appends_acked == 1
        assert follower.log_terms[:COMMIT_INDEX] == \
            list(range(1, COMMIT_INDEX + 1))

    def test_vote_off_by_one_grants_to_short_log(self):
        network = Network()
        follower = RaftFollowerNode()
        candidate = _Sink("candidate")
        network.attach(follower)
        network.attach(candidate)
        short_log = _message(0xB2, CURRENT_TERM, 2, LAST_INDEX - 1,
                             CURRENT_TERM, 0)
        network.send("candidate", follower.name, short_log)
        network.run()
        assert follower.votes_granted == [(2, LAST_INDEX - 1)]
        assert candidate.received  # the vote went out on the wire

    def test_vote_rejected_for_two_entry_gap(self):
        network = Network()
        follower = RaftFollowerNode()
        candidate = _Sink("candidate")
        network.attach(follower)
        network.attach(candidate)
        behind = _message(0xB2, CURRENT_TERM, 2, LAST_INDEX - 2,
                          CURRENT_TERM, 0)
        network.send("candidate", follower.name, behind)
        network.run()
        assert follower.votes_granted == []
