"""Unit tests for the two-phase-commit system: oracles and concrete node."""

from itertools import product

from repro.messages.concrete import encode
from repro.net.network import Network, Node
from repro.systems.tpc import (
    ABORT,
    COMMIT,
    EMPTY_OP,
    FLAG_DURABLE,
    FLAG_NONE,
    PREPARE,
    SKIP_WAL,
    TPC_LAYOUT,
    TpcParticipantNode,
    all_trojan_classes,
    classify_message,
    is_coordinator_generable,
    is_participant_accepted,
    prepare_message,
    run_lost_write_demo,
)


def _message(kind, txid, flags, op):
    return encode(TPC_LAYOUT, {"kind": kind, "txid": txid,
                               "flags": flags, "op": op})


def _small_message_space():
    for fields in product((PREPARE, COMMIT, ABORT, 0x00),
                          (0, 1, 2),        # txid
                          (0, 1, 2),        # flags
                          (0, 1)):          # op
        yield _message(*fields)


class TestGroundTruthOracles:
    def test_classification_matches_predicates(self):
        for message in _small_message_space():
            trojan = classify_message(message)
            expected = (is_participant_accepted(message)
                        and not is_coordinator_generable(message))
            assert (trojan is not None) == expected, message.hex()

    def test_brute_force_covers_exactly_the_seeded_classes(self):
        found = {classify_message(m) for m in _small_message_space()}
        found.discard(None)
        assert found == set(all_trojan_classes())
        assert len(all_trojan_classes()) == 2

    def test_skip_wal_takes_priority_over_empty_op(self):
        both = _message(PREPARE, 1, FLAG_NONE, 0)  # flag clear AND empty op
        assert classify_message(both).kind == SKIP_WAL

    def test_empty_op_requires_durable_flag(self):
        empty = _message(PREPARE, 1, FLAG_DURABLE, 0)
        assert classify_message(empty).kind == EMPTY_OP

    def test_well_formed_prepare_is_benign(self):
        benign = _message(PREPARE, 1, FLAG_DURABLE, 0x77)
        assert is_participant_accepted(benign)
        assert is_coordinator_generable(benign)
        assert classify_message(benign) is None

    def test_close_messages_are_benign(self):
        for kind in (COMMIT, ABORT):
            close = _message(kind, 1, FLAG_NONE, 0)
            assert is_participant_accepted(close)
            assert is_coordinator_generable(close)


class _Coordinator(Node):
    def __init__(self, name="coordinator"):
        super().__init__(name)
        self.acks = []

    def handle(self, source, payload, network):
        self.acks.append(payload)


class TestConcreteParticipant:
    def test_lost_write_demo(self):
        outcome = run_lost_write_demo()
        assert outcome.acked           # the Trojan was acked like any prepare
        assert outcome.control_survived
        assert not outcome.survived_crash  # ...but the write is gone

    def test_acks_are_indistinguishable(self):
        network = Network()
        participant = TpcParticipantNode()
        coordinator = _Coordinator()
        network.attach(participant)
        network.attach(coordinator)
        network.send("coordinator", participant.name,
                     prepare_message(1, flags=FLAG_DURABLE))
        network.send("coordinator", participant.name,
                     prepare_message(2, flags=FLAG_NONE))
        network.run()
        assert len(coordinator.acks) == 2
        assert coordinator.acks[0] == coordinator.acks[1]

    def test_close_path_validates_like_the_reference(self):
        # The concrete node must mirror the symbolic participant: a
        # COMMIT with garbage flags or a payload byte is rejected, and
        # an ABORT retires both the pending entry and the WAL record.
        network = Network()
        participant = TpcParticipantNode()
        coordinator = _Coordinator()
        network.attach(participant)
        network.attach(coordinator)
        network.send("coordinator", participant.name, prepare_message(3))
        network.send("coordinator", participant.name,
                     _message(COMMIT, 3, 0xFF, 0))       # bad flags
        network.send("coordinator", participant.name,
                     _message(COMMIT, 3, FLAG_NONE, 7))  # bad padding
        network.run()
        assert participant.committed == []
        network.send("coordinator", participant.name,
                     _message(ABORT, 3, FLAG_NONE, 0))
        network.run()
        assert not participant.survives_crash(3)  # WAL record retired
        network.send("coordinator", participant.name,
                     _message(COMMIT, 3, FLAG_NONE, 0))
        network.run()
        assert participant.committed == []        # aborted: gone for good

    def test_commit_requires_pending_prepare(self):
        network = Network()
        participant = TpcParticipantNode()
        coordinator = _Coordinator()
        network.attach(participant)
        network.attach(coordinator)
        network.send("coordinator", participant.name,
                     _message(COMMIT, 5, FLAG_NONE, 0))
        network.run()
        assert participant.committed == []
        network.send("coordinator", participant.name, prepare_message(5))
        network.send("coordinator", participant.name,
                     _message(COMMIT, 5, FLAG_NONE, 0))
        network.run()
        assert participant.committed == [5]
