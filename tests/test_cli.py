"""Tests for the ``python -m repro`` command-line interface."""

import json

import pytest

from repro.__main__ import main


class TestCli:
    def test_list_shows_experiments(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ("toy", "fsp", "fsp-wildcard", "pbft"):
            assert name in out

    def test_toy_experiment(self, capsys):
        assert main(["toy"]) == 0
        out = capsys.readouterr().out
        assert "Trojan finding" in out

    def test_pbft_experiment(self, capsys):
        assert main(["pbft"]) == 0
        out = capsys.readouterr().out
        assert "MAC attack impact" in out
        assert "attack-50%" in out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["nonsense"])


class TestPersistenceFlags:
    def test_toy_run_populates_cache_dir(self, capsys, tmp_path):
        cache_dir = tmp_path / "cache"
        assert main(["toy", "--cache-dir", str(cache_dir)]) == 0
        assert list(cache_dir.glob("*.qc")), "no segment was written"

    def test_resume_conflicting_run_dir_rejected(self, capsys, tmp_path):
        with pytest.raises(SystemExit):
            main(["toy", "--shards", "2",
                  "--run-dir", str(tmp_path / "a"),
                  "--resume", str(tmp_path / "b")])
        assert "conflicting" in capsys.readouterr().err

    def test_run_then_resume_prints_identical_findings(self, capsys,
                                                       tmp_path):
        """--resume on an already *completed* journal re-runs nothing
        new but must still print the same findings table."""
        run_dir = tmp_path / "run"
        assert main(["toy", "--shards", "2", "--run-dir",
                     str(run_dir)]) == 0
        first = capsys.readouterr().out
        assert main(["toy", "--shards", "2", "--resume", str(run_dir)]) == 0
        second = capsys.readouterr().out
        # The title line embeds a wall-clock timing, and the trailing
        # "run health" block legitimately differs (a resume of a
        # completed journal answers everything from the journal, so it
        # issues zero fresh solver queries); compare the findings rows.
        def rows(s):
            lines = s.splitlines()
            if "run health:" in lines:
                lines = lines[:lines.index("run health:")]
            return [l for l in lines if "Trojan finding(s) in" not in l]
        assert rows(second) == rows(first)
        assert any("witness" in l for l in rows(first))
        assert "resumed regions" in second


class TestCacheSubcommand:
    def _populate(self, tmp_path):
        cache_dir = tmp_path / "cache"
        assert main(["toy", "--cache-dir", str(cache_dir)]) == 0
        return cache_dir

    def test_stats_reports_segments_and_records(self, capsys, tmp_path):
        cache_dir = self._populate(tmp_path)
        capsys.readouterr()
        assert main(["cache", "stats", "--cache-dir", str(cache_dir)]) == 0
        out = capsys.readouterr().out
        assert "segments" in out
        assert "records" in out

    def test_verify_clean_cache_exits_zero(self, capsys, tmp_path):
        cache_dir = self._populate(tmp_path)
        capsys.readouterr()
        assert main(["cache", "verify", "--cache-dir", str(cache_dir)]) == 0
        out = capsys.readouterr().out
        assert "records dropped    0" in out

    def test_verify_corrupted_cache_exits_one(self, capsys, tmp_path):
        from repro.explore.faults import CorruptRecord, apply_disk_fault
        from repro.solver.diskcache import DiskCacheStore

        cache_dir = self._populate(tmp_path)
        segment = DiskCacheStore(cache_dir).segment_paths()[0]
        apply_disk_fault(segment, CorruptRecord(record=0))
        capsys.readouterr()
        assert main(["cache", "verify", "--cache-dir", str(cache_dir)]) == 1
        out = capsys.readouterr().out
        assert "segments damaged   1" in out

    def test_compact_then_clear(self, capsys, tmp_path):
        cache_dir = self._populate(tmp_path)
        capsys.readouterr()
        assert main(["cache", "compact", "--cache-dir", str(cache_dir)]) == 0
        assert "compacted" in capsys.readouterr().out
        assert main(["cache", "clear", "--cache-dir", str(cache_dir)]) == 0
        assert "removed" in capsys.readouterr().out
        assert not list(cache_dir.glob("*.qc"))

    def test_cache_listed_in_experiment_list(self, capsys):
        assert main(["list"]) == 0
        assert "cache" in capsys.readouterr().out


class TestBroadcastExperiment:
    def test_broadcast_scores_perfectly_and_shows_the_demo(self, capsys):
        assert main(["broadcast"]) == 0
        out = capsys.readouterr().out
        assert "Bracha broadcast node" in out
        assert "7/7" in out
        assert "concrete impact" in out
        assert "strict control node delivered None" in out


class TestCorpusSubcommand:
    def test_run_scores_and_writes_the_report(self, capsys, tmp_path):
        out_file = tmp_path / "corpus.json"
        assert main(["corpus", "run", "--variants", "3",
                     "--corpus-seed", "0", "--out", str(out_file)]) == 0
        out = capsys.readouterr().out
        assert "Scenario-matrix corpus vs derived ground truth" in out
        assert "corpus seed          0" in out
        assert "reproduce any row" in out
        payload = json.loads(out_file.read_text())
        assert payload["all_perfect"] is True
        assert payload["variants"] == 3
        assert payload["templates"] == ["broadcast", "raft", "tpc"]

    def test_variant_token_reruns_a_single_row(self, capsys, tmp_path):
        out_file = tmp_path / "corpus.json"
        assert main(["corpus", "run", "--variants", "1",
                     "--corpus-seed", "0", "--out", str(out_file)]) == 0
        token = json.loads(out_file.read_text())["results"][0]["token"]
        capsys.readouterr()
        assert main(["corpus", "run", "--variant", token]) == 0
        out = capsys.readouterr().out
        assert token in out
        # a token rerun is not a generated corpus: no seed to print
        assert "corpus seed          -" in out

    def test_report_rerenders_a_saved_run(self, capsys, tmp_path):
        out_file = tmp_path / "corpus.json"
        assert main(["corpus", "run", "--variants", "1",
                     "--corpus-seed", "0", "--out", str(out_file)]) == 0
        capsys.readouterr()
        assert main(["corpus", "report", str(out_file)]) == 0
        out = capsys.readouterr().out
        assert "Scenario-matrix corpus vs derived ground truth" in out
        # re-rendered reports have no wall clocks, only '-' time cells
        assert " -" in out

    def test_malformed_token_exits_two(self, capsys):
        assert main(["corpus", "run", "--variant", "tpc"]) == 2
        assert "TEMPLATE:SEED" in capsys.readouterr().err

    def test_unknown_template_exits_two(self, capsys):
        assert main(["corpus", "run", "--templates", "paxos"]) == 2
        assert "paxos" in capsys.readouterr().err

    def test_corpus_listed_in_experiment_list(self, capsys):
        assert main(["list"]) == 0
        assert "corpus" in capsys.readouterr().out


class TestTraceExportSalvage:
    """Satellite regression: ``trace export`` on a torn trace.jsonl must
    export the salvaged prefix with a warning instead of failing."""

    def _torn_trace(self, tmp_path):
        from repro.explore.faults import TruncateSegment, apply_disk_fault
        from repro.obs.trace import write_trace

        records = [{"seq": i, "kind": "event", "name": name,
                    "ts": float(i), "depth": 0, "src": "coordinator"}
                   for i, name in enumerate(["a", "b", "c"])]
        path = write_trace(tmp_path / "trace.jsonl", records)
        apply_disk_fault(path, TruncateSegment(drop_bytes=2))
        return path

    def test_export_salvages_the_valid_prefix(self, capsys, tmp_path):
        path = self._torn_trace(tmp_path)
        assert main(["trace", "export", str(path)]) == 0
        captured = capsys.readouterr()
        assert "warning: trace" in captured.err
        assert "salvaged prefix" in captured.err
        out_path = path.with_suffix(".chrome.json")
        assert out_path.exists()
        chrome = json.loads(out_path.read_text())
        names = {e["name"] for e in chrome["traceEvents"]}
        # the torn record 'c' is gone; the prefix survives
        assert {"a", "b"} <= names
        assert "c" not in names

    def test_intact_trace_exports_without_warning(self, capsys, tmp_path):
        from repro.obs.trace import write_trace

        records = [{"seq": 0, "kind": "event", "name": "a", "ts": 0.0,
                    "depth": 0, "src": "coordinator"}]
        path = write_trace(tmp_path / "trace.jsonl", records)
        assert main(["trace", "export", str(path)]) == 0
        captured = capsys.readouterr()
        assert "warning" not in captured.err
        assert path.with_suffix(".chrome.json").exists()
