"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import main


class TestCli:
    def test_list_shows_experiments(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ("toy", "fsp", "fsp-wildcard", "pbft"):
            assert name in out

    def test_toy_experiment(self, capsys):
        assert main(["toy"]) == 0
        out = capsys.readouterr().out
        assert "Trojan finding" in out

    def test_pbft_experiment(self, capsys):
        assert main(["pbft"]) == 0
        out = capsys.readouterr().out
        assert "MAC attack impact" in out
        assert "attack-50%" in out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["nonsense"])
