"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import main


class TestCli:
    def test_list_shows_experiments(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ("toy", "fsp", "fsp-wildcard", "pbft"):
            assert name in out

    def test_toy_experiment(self, capsys):
        assert main(["toy"]) == 0
        out = capsys.readouterr().out
        assert "Trojan finding" in out

    def test_pbft_experiment(self, capsys):
        assert main(["pbft"]) == 0
        out = capsys.readouterr().out
        assert "MAC attack impact" in out
        assert "attack-50%" in out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["nonsense"])


class TestPersistenceFlags:
    def test_toy_run_populates_cache_dir(self, capsys, tmp_path):
        cache_dir = tmp_path / "cache"
        assert main(["toy", "--cache-dir", str(cache_dir)]) == 0
        assert list(cache_dir.glob("*.qc")), "no segment was written"

    def test_resume_conflicting_run_dir_rejected(self, capsys, tmp_path):
        with pytest.raises(SystemExit):
            main(["toy", "--shards", "2",
                  "--run-dir", str(tmp_path / "a"),
                  "--resume", str(tmp_path / "b")])
        assert "conflicting" in capsys.readouterr().err

    def test_run_then_resume_prints_identical_findings(self, capsys,
                                                       tmp_path):
        """--resume on an already *completed* journal re-runs nothing
        new but must still print the same findings table."""
        run_dir = tmp_path / "run"
        assert main(["toy", "--shards", "2", "--run-dir",
                     str(run_dir)]) == 0
        first = capsys.readouterr().out
        assert main(["toy", "--shards", "2", "--resume", str(run_dir)]) == 0
        second = capsys.readouterr().out
        # The title line embeds a wall-clock timing, and the trailing
        # "run health" block legitimately differs (a resume of a
        # completed journal answers everything from the journal, so it
        # issues zero fresh solver queries); compare the findings rows.
        def rows(s):
            lines = s.splitlines()
            if "run health:" in lines:
                lines = lines[:lines.index("run health:")]
            return [l for l in lines if "Trojan finding(s) in" not in l]
        assert rows(second) == rows(first)
        assert any("witness" in l for l in rows(first))
        assert "resumed regions" in second


class TestCacheSubcommand:
    def _populate(self, tmp_path):
        cache_dir = tmp_path / "cache"
        assert main(["toy", "--cache-dir", str(cache_dir)]) == 0
        return cache_dir

    def test_stats_reports_segments_and_records(self, capsys, tmp_path):
        cache_dir = self._populate(tmp_path)
        capsys.readouterr()
        assert main(["cache", "stats", "--cache-dir", str(cache_dir)]) == 0
        out = capsys.readouterr().out
        assert "segments" in out
        assert "records" in out

    def test_verify_clean_cache_exits_zero(self, capsys, tmp_path):
        cache_dir = self._populate(tmp_path)
        capsys.readouterr()
        assert main(["cache", "verify", "--cache-dir", str(cache_dir)]) == 0
        out = capsys.readouterr().out
        assert "records dropped    0" in out

    def test_verify_corrupted_cache_exits_one(self, capsys, tmp_path):
        from repro.explore.faults import CorruptRecord, apply_disk_fault
        from repro.solver.diskcache import DiskCacheStore

        cache_dir = self._populate(tmp_path)
        segment = DiskCacheStore(cache_dir).segment_paths()[0]
        apply_disk_fault(segment, CorruptRecord(record=0))
        capsys.readouterr()
        assert main(["cache", "verify", "--cache-dir", str(cache_dir)]) == 1
        out = capsys.readouterr().out
        assert "segments damaged   1" in out

    def test_compact_then_clear(self, capsys, tmp_path):
        cache_dir = self._populate(tmp_path)
        capsys.readouterr()
        assert main(["cache", "compact", "--cache-dir", str(cache_dir)]) == 0
        assert "compacted" in capsys.readouterr().out
        assert main(["cache", "clear", "--cache-dir", str(cache_dir)]) == 0
        assert "removed" in capsys.readouterr().out
        assert not list(cache_dir.glob("*.qc"))

    def test_cache_listed_in_experiment_list(self, capsys):
        assert main(["list"]) == 0
        assert "cache" in capsys.readouterr().out
